// Fidelity tests for the benchmark reconstructions: every circuit of the
// Table 2 suite must satisfy the paper's preconditions, sit on the right
// side of the distributive split, and approximate the reported state count.
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"

namespace nshot::bench_suite {
namespace {

class BenchmarkFidelityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkFidelityTest, SatisfiesPaperPreconditions) {
  const BenchmarkInfo& info = find_benchmark(GetParam());
  const sg::StateGraph g = info.build();
  EXPECT_TRUE(sg::check_consistency(g).ok());
  EXPECT_TRUE(sg::check_reachability(g).ok());
  EXPECT_TRUE(sg::check_semi_modular(g).ok()) << sg::check_semi_modular(g).summary();
  EXPECT_TRUE(sg::check_csc(g).ok()) << sg::check_csc(g).summary();
}

TEST_P(BenchmarkFidelityTest, DistributivityMatchesTablePart) {
  const BenchmarkInfo& info = find_benchmark(GetParam());
  const sg::StateGraph g = info.build();
  EXPECT_EQ(sg::is_distributive(g), !info.nondistributive);
}

TEST_P(BenchmarkFidelityTest, StateCountNearPaper) {
  const BenchmarkInfo& info = find_benchmark(GetParam());
  const sg::StateGraph g = info.build();
  const double ratio = static_cast<double>(g.num_states()) / info.paper_states;
  EXPECT_GE(ratio, 0.5) << "paper " << info.paper_states << " vs " << g.num_states();
  EXPECT_LE(ratio, 1.5) << "paper " << info.paper_states << " vs " << g.num_states();
}

std::vector<std::string> small_and_medium_names() {
  std::vector<std::string> names;
  for (const BenchmarkInfo& info : all_benchmarks())
    if (info.paper_states <= 400) names.push_back(info.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchmarkFidelityTest,
                         ::testing::ValuesIn(small_and_medium_names()));

TEST(BenchmarkRegistryTest, HasAllTwentyFiveCircuits) {
  EXPECT_EQ(all_benchmarks().size(), 25u);
  EXPECT_THROW(find_benchmark("nope"), Error);
}

TEST(BenchmarkRegistryTest, SgFormatFlagsMatchTableNote4) {
  EXPECT_TRUE(find_benchmark("tsbmsi").sg_format);
  EXPECT_TRUE(find_benchmark("tsbmsiBRK").sg_format);
  EXPECT_FALSE(find_benchmark("chu133").sg_format);
}

TEST(BenchmarkRegistryTest, LargeBenchmarksBuildAndCheck) {
  for (const char* name : {"master-read", "tsbmsi", "tsbmsiBRK"}) {
    const BenchmarkInfo& info = find_benchmark(name);
    const sg::StateGraph g = info.build();
    EXPECT_TRUE(sg::check_consistency(g).ok()) << name;
    EXPECT_TRUE(sg::check_csc(g).ok()) << name;
    const double ratio = static_cast<double>(g.num_states()) / info.paper_states;
    EXPECT_GE(ratio, 0.5) << name;
    EXPECT_LE(ratio, 1.5) << name;
  }
}

TEST(GeneratorTest, StagedCycleRejectsDegenerateInput) {
  EXPECT_THROW(staged_cycle_g("t", {"a"}, {}, {{"a+"}}), Error);
  EXPECT_THROW(choice_cycle_g("t", {"a"}, {}, {}), Error);
}

TEST(GeneratorTest, ProductMultipliesStates) {
  const sg::StateGraph a = or_causality_cell("a", "u");
  const sg::StateGraph b = or_causality_cell("b", "v");
  const sg::StateGraph p = sg_product(a, b, "p");
  EXPECT_EQ(p.num_states(), a.num_states() * b.num_states());
  EXPECT_EQ(p.num_signals(), a.num_signals() + b.num_signals());
  EXPECT_TRUE(sg::check_implementability(p).ok());
}

TEST(GeneratorTest, OrCellIsTheFigure1Pattern) {
  const sg::StateGraph cell = or_causality_cell("cell", "");
  EXPECT_EQ(cell.num_states(), 14);
  EXPECT_FALSE(sg::is_distributive(cell));
  EXPECT_TRUE(sg::check_implementability(cell).ok());
  EXPECT_TRUE(sg::is_single_traversal(cell));
}

}  // namespace
}  // namespace nshot::bench_suite
