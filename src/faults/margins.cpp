#include "faults/margins.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "sim/delay_space.hpp"
#include "sim/event_sim.hpp"
#include "sim/trial_batch.hpp"
#include "util/error.hpp"

namespace nshot::faults {

using gatelib::GateType;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;

void OmegaStats::merge(const OmegaStats& other) {
  fired += other.fired;
  absorbed += other.absorbed;
  min_fire_slack = std::min(min_fire_slack, other.min_fire_slack);
  min_absorb_slack = std::min(min_absorb_slack, other.min_absorb_slack);
}

MarginProbe::MarginProbe(const netlist::Netlist& circuit, const gatelib::GateLibrary& lib)
    : omega_(lib.mhs_threshold()) {
  watch_.resize(static_cast<std::size_t>(circuit.num_nets()));
  for (GateId g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gate(g);
    if (gate.type != GateType::kMhsFlipFlop) continue;
    NSHOT_REQUIRE(gate.inputs.size() == 4 && gate.outputs.size() == 2,
                  "MHS cell shape expected by the margin probe");
    Cell cell;
    cell.gate = g;
    cell.signal = circuit.net_name(gate.outputs[0]);
    for (int i = 0; i < 4; ++i) cell.in[static_cast<std::size_t>(i)] = gate.inputs[static_cast<std::size_t>(i)];
    cell.q = gate.outputs[0];
    const int index = static_cast<int>(cells_.size());
    for (int i = 0; i < 4; ++i) watch_[gate.inputs[static_cast<std::size_t>(i)]].emplace_back(index, i);
    watch_[cell.q].emplace_back(index, 4);
    cells_.push_back(std::move(cell));
  }
}

void MarginProbe::reset() {
  for (Cell& cell : cells_) {
    cell.values = {};
    cell.q_value = false;
    cell.set_rise = -1.0;
    cell.set_rise_q = false;
    cell.reset_rise = -1.0;
    cell.reset_rise_q = false;
    cell.stats = OmegaStats{};
  }
}

void MarginProbe::capture_initial(const sim::Simulator& sim) {
  for (Cell& cell : cells_) {
    for (std::size_t i = 0; i < 4; ++i) cell.values[i] = sim.value(cell.in[i]);
    cell.q_value = sim.value(cell.q);
    // An excitation already high at t=0 starts its pulse clock at 0.
    if (cell.values[0] && cell.values[2]) {
      cell.set_rise = 0.0;
      cell.set_rise_q = cell.q_value;
    }
    if (cell.values[1] && cell.values[3]) {
      cell.reset_rise = 0.0;
      cell.reset_rise_q = cell.q_value;
    }
  }
}

sim::NetObserver MarginProbe::observer() {
  return [this](NetId net, bool value, double time) { on_change(net, value, time); };
}

void MarginProbe::edge(Cell& cell, bool set_side, bool level, double time) {
  double& rise = set_side ? cell.set_rise : cell.reset_rise;
  bool& rise_q = set_side ? cell.set_rise_q : cell.reset_rise_q;
  if (level) {
    if (rise < 0.0) {
      rise = time;
      rise_q = cell.q_value;
    }
    return;
  }
  if (rise < 0.0) return;
  // A pulse only matters when the cell could act on it: set pulses while
  // q was low, reset pulses while q was high (the flip-flop ignores the
  // rest — see Simulator::handle_mhs_input).
  const bool relevant = set_side ? !rise_q : rise_q;
  if (relevant) {
    const double width = time - rise;
    if (width >= omega_) {
      ++cell.stats.fired;
      cell.stats.min_fire_slack = std::min(cell.stats.min_fire_slack, width - omega_);
    } else {
      ++cell.stats.absorbed;
      cell.stats.min_absorb_slack = std::min(cell.stats.min_absorb_slack, omega_ - width);
    }
  }
  rise = -1.0;
}

void MarginProbe::on_change(NetId net, bool value, double time) {
  const std::vector<std::pair<int, int>>& entries = watch_[static_cast<std::size_t>(net)];
  if (entries.empty()) return;
  for (const auto& [index, slot] : entries) {
    Cell& cell = cells_[static_cast<std::size_t>(index)];
    const bool old_set = cell.values[0] && cell.values[2];
    const bool old_reset = cell.values[1] && cell.values[3];
    if (slot == 4)
      cell.q_value = value;
    else
      cell.values[static_cast<std::size_t>(slot)] = value;
    const bool new_set = cell.values[0] && cell.values[2];
    const bool new_reset = cell.values[1] && cell.values[3];
    if (new_set != old_set) edge(cell, /*set_side=*/true, new_set, time);
    if (new_reset != old_reset) edge(cell, /*set_side=*/false, new_reset, time);
  }
}

namespace {

/// Longest and shortest settle paths from any level source (driverless
/// nets, storage outputs, feedback cuts) to each net, with the given
/// per-gate delays.  Delay lines and inertial pads contribute their
/// (possibly overridden) vector delay like any other gate.
struct PathDelays {
  std::vector<double> longest, shortest;
};

/// Netlist::driver is a linear scan; settle_paths runs it per net, so the
/// compiled driver table (when available) turns an O(nets*gates) setup
/// into O(nets).
GateId driver_of(const netlist::Netlist& circuit, const sim::CompiledNetlist* compiled,
                 NetId net) {
  if (compiled) return compiled->driver(net);
  const auto driver = circuit.driver(net);
  return driver ? *driver : -1;
}

/// Recursive DFS state for settle_paths; a plain member call per net
/// (this runs once per adversarial evaluation, so the indirection of a
/// recursive std::function showed up in profiles).
struct SettleVisitor {
  const netlist::Netlist& circuit;
  const std::vector<double>& delays;
  const sim::CompiledNetlist* compiled;
  PathDelays& paths;

  void visit(NetId net) {
    const std::size_t i = static_cast<std::size_t>(net);
    if (paths.longest[i] >= 0.0) return;
    const GateId driver = driver_of(circuit, compiled, net);
    if (driver < 0) {
      paths.longest[i] = paths.shortest[i] = 0.0;
      return;
    }
    const Gate& gate = circuit.gate(driver);
    if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      paths.longest[i] = paths.shortest[i] = 0.0;
      return;
    }
    // Mark before recursing: combinational logic is acyclic (checked at
    // construction), but be defensive about malformed inputs.
    paths.longest[i] = paths.shortest[i] = 0.0;
    double lo = kNoMargin, hi = 0.0;
    for (const NetId in : gate.inputs) {
      visit(in);
      hi = std::max(hi, paths.longest[static_cast<std::size_t>(in)]);
      lo = std::min(lo, paths.shortest[static_cast<std::size_t>(in)]);
    }
    if (gate.inputs.empty()) lo = 0.0;
    const double d = delays[static_cast<std::size_t>(driver)];
    paths.longest[i] = hi + d;
    paths.shortest[i] = lo + d;
  }
};

PathDelays settle_paths(const netlist::Netlist& circuit, const std::vector<double>& delays,
                        const sim::CompiledNetlist* compiled = nullptr) {
  const std::size_t n = static_cast<std::size_t>(circuit.num_nets());
  PathDelays paths;
  paths.longest.assign(n, -1.0);
  paths.shortest.assign(n, -1.0);
  SettleVisitor visitor{circuit, delays, compiled, paths};
  for (NetId net = 0; net < circuit.num_nets(); ++net) visitor.visit(net);
  return paths;
}

/// Instance delay of a delay line directly feeding `net`, else 0.
double enable_line_delay(const netlist::Netlist& circuit, const std::vector<double>& delays,
                         NetId net, const sim::CompiledNetlist* compiled = nullptr) {
  const GateId driver = driver_of(circuit, compiled, net);
  if (driver < 0) return 0.0;
  if (circuit.gate(driver).type != GateType::kDelayLine) return 0.0;
  return delays[static_cast<std::size_t>(driver)];
}

std::vector<Eq1Margin> eq1_margins_impl(const netlist::Netlist& circuit,
                                        const gatelib::GateLibrary& lib,
                                        const std::vector<double>& delays,
                                        const sim::CompiledNetlist* compiled) {
  NSHOT_REQUIRE(delays.size() == static_cast<std::size_t>(circuit.num_gates()),
                "eq1_margins: one delay per gate expected");
  std::vector<Eq1Margin> margins;
  const PathDelays paths = settle_paths(circuit, delays, compiled);
  const double t_mhs = lib.mhs_response();
  for (GateId g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gate(g);
    if (gate.type != GateType::kMhsFlipFlop) continue;
    Eq1Margin m;
    m.mhs = g;
    m.signal = circuit.net_name(gate.outputs[0]);
    const std::size_t set = static_cast<std::size_t>(gate.inputs[0]);
    const std::size_t reset = static_cast<std::size_t>(gate.inputs[1]);
    m.t_set0_worst = paths.longest[set];
    m.t_set1_fast = paths.shortest[set];
    m.t_res0_worst = paths.longest[reset];
    m.t_res1_fast = paths.shortest[reset];
    m.t_del_set = enable_line_delay(circuit, delays, gate.inputs[2], compiled);
    m.t_del_reset = enable_line_delay(circuit, delays, gate.inputs[3], compiled);
    m.slack_set = m.t_del_set + m.t_res1_fast + t_mhs - m.t_set0_worst;
    m.slack_reset = m.t_del_reset + m.t_set1_fast + t_mhs - m.t_res0_worst;
    margins.push_back(std::move(m));
  }
  return margins;
}

}  // namespace

std::vector<Eq1Margin> eq1_margins(const netlist::Netlist& circuit,
                                   const gatelib::GateLibrary& lib,
                                   const std::vector<double>& delays) {
  return eq1_margins_impl(circuit, lib, delays, nullptr);
}

std::vector<Eq1Margin> eq1_margins(const sim::CompiledNetlist& compiled,
                                   const std::vector<double>& delays) {
  return eq1_margins_impl(compiled.netlist(), compiled.lib(), delays, &compiled);
}

std::vector<Eq1Requirement> eq1_requirements(const netlist::Netlist& circuit,
                                             const gatelib::GateLibrary& lib) {
  const sim::DelaySpace space(circuit, lib);
  std::vector<double> all_slow(static_cast<std::size_t>(circuit.num_gates()));
  std::vector<double> all_fast(static_cast<std::size_t>(circuit.num_gates()));
  for (GateId g = 0; g < circuit.num_gates(); ++g) {
    all_slow[static_cast<std::size_t>(g)] = space.hi(g);
    all_fast[static_cast<std::size_t>(g)] = space.lo(g);
  }
  const PathDelays slow = settle_paths(circuit, all_slow);
  const PathDelays fast = settle_paths(circuit, all_fast);
  const double t_mhs = lib.mhs_response();

  std::vector<Eq1Requirement> reqs;
  for (GateId g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gate(g);
    if (gate.type != GateType::kMhsFlipFlop) continue;
    Eq1Requirement req;
    req.mhs = g;
    req.signal = circuit.net_name(gate.outputs[0]);
    const std::size_t set = static_cast<std::size_t>(gate.inputs[0]);
    const std::size_t reset = static_cast<std::size_t>(gate.inputs[1]);
    req.required_set = slow.longest[set] - fast.shortest[reset] - t_mhs;
    req.required_reset = slow.longest[reset] - fast.shortest[set] - t_mhs;
    req.installed_set = enable_line_delay(circuit, all_slow, gate.inputs[2]);
    req.installed_reset = enable_line_delay(circuit, all_slow, gate.inputs[3]);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

ProbedRun run_probed(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                     const FaultScenario& scenario, const ScenarioOptions& options) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  FaultScenario pinned = scenario;
  pinned.delays = materialize_delays(circuit, scenario);

  MarginProbe probe(circuit, lib);
  sim::ClosedLoopConfig config = to_config(pinned, options);
  config.observer = probe.observer();
  config.on_initialized = [&probe](const sim::Simulator& sim) { probe.capture_initial(sim); };

  ProbedRun run;
  run.report = sim::run_closed_loop(spec, circuit, config);
  run.eq1 = eq1_margins(circuit, lib, pinned.delays);
  for (int k = 0; k < probe.num_cells(); ++k) {
    run.omega.push_back(probe.stats(k));
    run.min_slack = std::min(run.min_slack, probe.stats(k).min_slack());
  }
  for (const Eq1Margin& m : run.eq1) run.min_slack = std::min(run.min_slack, m.slack());
  return run;
}

ProbedRun run_probed(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                     const sim::CompiledNetlist& compiled, const FaultScenario& scenario,
                     const ScenarioOptions& options, sim::Simulator* reuse) {
  FaultScenario pinned = scenario;
  pinned.delays = materialize_delays(compiled, scenario);

  MarginProbe probe(compiled.netlist(), compiled.lib());
  sim::ClosedLoopConfig config = to_config(pinned, options);
  config.observer = probe.observer();
  config.on_initialized = [&probe](const sim::Simulator& sim) { probe.capture_initial(sim); };

  ProbedRun run;
  run.report = sim::run_closed_loop(spec, binding, compiled, config, nullptr, reuse);
  run.eq1 = eq1_margins(compiled, pinned.delays);
  for (int k = 0; k < probe.num_cells(); ++k) {
    run.omega.push_back(probe.stats(k));
    run.min_slack = std::min(run.min_slack, probe.stats(k).min_slack());
  }
  for (const Eq1Margin& m : run.eq1) run.min_slack = std::min(run.min_slack, m.slack());
  return run;
}

ProbedRun run_probed(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                     const FaultScenario& scenario, const ScenarioOptions& options,
                     sim::TrialRunner& runner, MarginProbe* probe_reuse) {
  const sim::CompiledNetlist& compiled = runner.compiled();
  FaultScenario pinned = scenario;
  pinned.delays = materialize_delays(compiled, scenario);

  std::optional<MarginProbe> local;
  MarginProbe* probe = probe_reuse;
  if (probe != nullptr)
    probe->reset();
  else
    probe = &local.emplace(compiled.netlist(), compiled.lib());

  sim::ClosedLoopConfig config = to_config(pinned, options);
  config.observer = probe->observer();
  config.on_initialized = [probe](const sim::Simulator& sim) { probe->capture_initial(sim); };

  ProbedRun run;
  run.report = runner.run(spec, binding, config);
  run.eq1 = eq1_margins(compiled, pinned.delays);
  for (int k = 0; k < probe->num_cells(); ++k) {
    run.omega.push_back(probe->stats(k));
    run.min_slack = std::min(run.min_slack, probe->stats(k).min_slack());
  }
  for (const Eq1Margin& m : run.eq1) run.min_slack = std::min(run.min_slack, m.slack());
  return run;
}

}  // namespace nshot::faults
