// The per-gate delay space of a netlist under the pure delay model: each
// simple gate may take any delay in the library's [min, max] interval,
// while instance-delay elements (delay lines, inertial pads) and the MHS
// flip-flop response are fixed by the cell.  This is the single source of
// truth for delay sampling — the simulator, the conformance checker's seed
// sweeps and the fault-injection harness all draw from it, so a seed
// identifies the same delay assignment everywhere.
#pragma once

#include <vector>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

class DelaySpace {
 public:
  DelaySpace(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib);

  int num_gates() const { return static_cast<int>(lo_.size()); }

  /// True when the gate's delay is fixed by the instance or cell (delay
  /// lines, inertial pads, MHS flip-flops) rather than sampled.
  bool fixed(netlist::GateId g) const { return fixed_[static_cast<std::size_t>(g)]; }

  double lo(netlist::GateId g) const { return lo_[static_cast<std::size_t>(g)]; }
  double hi(netlist::GateId g) const { return hi_[static_cast<std::size_t>(g)]; }

  /// Midpoint delay (the deterministic baseline); the fixed value for
  /// fixed gates.
  double nominal(netlist::GateId g) const {
    return 0.5 * (lo(g) + hi(g));
  }
  std::vector<double> nominal_vector() const;

  /// Sample one delay per gate.  Consumes the RNG exactly like the
  /// simulator's internal sampler, so Simulator(seed) and
  /// DelaySpace::sample(Rng(seed)) agree gate by gate.
  std::vector<double> sample(Rng& rng) const;
  /// Same draw sequence, writing into `out` (resized; capacity reused by
  /// resettable simulators that sample once per trial).
  void sample_into(Rng& rng, std::vector<double>& out) const;

  /// Search bounds stretched beyond the library interval by `factor` >= 1
  /// (the delay-outlier fault model: a marginal cell slower/faster than
  /// its characterization).  Fixed gates are never stretched.
  double stressed_lo(netlist::GateId g, double factor) const {
    return fixed(g) ? lo(g) : lo(g) / factor;
  }
  double stressed_hi(netlist::GateId g, double factor) const {
    return fixed(g) ? hi(g) : hi(g) * factor;
  }

 private:
  std::vector<double> lo_, hi_;
  std::vector<bool> fixed_;
};

}  // namespace nshot::sim
