// Closed-loop conformance and external hazard-freeness checking.
//
// The environment automaton walks the state graph: it drives the circuit's
// input nets with transitions the SG currently enables (after arbitrary
// reaction delays — the paper's environment assumption), and observes every
// change of a non-input net.  A non-input change that the specification
// does not enable in the current state — including any glitch pulse — is a
// conformance violation; absence of progress while non-input transitions
// are enabled is a deadlock (e.g. an unsatisfied trigger requirement
// starving the MHS flip-flop).
//
// Internal SOP nets are expected to glitch (that is the whole point of the
// architecture); their toggle activity is reported as `internal_toggles`
// so benches can show hazardous-inside / clean-outside behaviour.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "sim/event_sim.hpp"
#include "util/run_config.hpp"

namespace nshot::sim {

class VcdRecorder;

/// The shared seed / jobs / grain / reference_kernels knobs live in
/// nshot::RunConfig; the old spellings (`options.seed`, `options.jobs`,
/// ...) are inherited members and keep compiling unchanged.
struct ConformanceOptions : RunConfig {
  int runs = 20;                 // independent delay samples
  int max_transitions = 200;     // observable transitions per run
  double input_delay_min = 0.1;  // environment reaction interval
  double input_delay_max = 12.0;
  double time_limit = 1e6;
  /// Per-run event budget (0 = unbounded).  A faulty circuit can
  /// oscillate; exceeding the budget is reported as a kEventBudget
  /// violation instead of hanging the sweep.
  std::uint64_t max_events = 5'000'000;
  /// Fundamental-mode style environment: wait for the circuit to become
  /// quiescent before committing the next input (the paper's methods do
  /// NOT need this — the default environment "can react immediately" —
  /// but it is useful for comparing against fundamental-mode assumptions
  /// [20, 8]).
  bool fundamental_mode = false;
};

enum class ViolationKind {
  kHazard,       // non-input transition the spec does not enable
  kEnvironment,  // input transition the spec does not enable
  kDeadlock,     // quiescent while the spec enables a non-input transition
  kEventBudget,  // run aborted after max_events (likely oscillation)
};

const char* violation_kind_name(ViolationKind kind);

struct ConformanceViolation {
  std::uint64_t seed = 0;
  double time = 0.0;
  ViolationKind kind = ViolationKind::kHazard;
  std::string description;
};

struct ConformanceReport {
  int runs = 0;
  long external_transitions = 0;  // spec-conformant observable transitions
  long internal_toggles = 0;      // toggles on non-observable nets
  long absorbed_pulses = 0;       // sub-threshold pulses the MHS filtered
  double simulated_time = 0.0;    // total simulated time over all runs
  int deadlocks = 0;
  int budget_exhausted = 0;       // runs that hit the event budget
  std::vector<ConformanceViolation> violations;

  /// Average simulated time per observable transition (dynamic cycle-time
  /// proxy); 0 when nothing fired.
  double time_per_transition() const {
    return external_transitions > 0 ? simulated_time / external_transitions : 0.0;
  }

  bool clean() const { return violations.empty() && deadlocks == 0; }
  std::string summary() const;
};

namespace testing {
/// Deterministic kernel-fault injection for exercising the
/// verify_kernels / kKernelMismatch path end to end: while enabled, every
/// compiled-kernel conformance trial's fingerprint is perturbed before the
/// reference comparison, as if the compiled simulator had miscomputed a
/// toggle count.  Reference-kernel trials are untouched, so a degraded
/// retry under reference_kernels succeeds — exactly the failure mode the
/// fallback machinery exists for.  Also enabled by the
/// NSHOT_INJECT_KERNEL_FAULT environment variable (read once, at first
/// query).  Test/CI hook only; never set in production runs.
void set_kernel_fault_injection(bool enabled);
bool kernel_fault_injection();
}  // namespace testing

/// Run `options.runs` randomized-delay closed-loop simulations of `circuit`
/// against `spec`.
///
/// With `options.verify_kernels` set (and reference_kernels clear), every
/// trial is run twice — once through the compiled simulator, once through
/// the uncompiled reference path — and the two single-trial reports are
/// compared field by field.  Any divergence raises
/// Error(kKernelMismatch) naming the trial, seed and first differing
/// field; nshot::Pipeline degrades that into a reference-kernel retry.  The circuit's primary input nets must be named after
/// the SG input signals and the observable non-input nets after the SG
/// non-input signals (all synthesizers in this repository follow that
/// convention).
ConformanceReport check_conformance(const sg::StateGraph& spec,
                                    const netlist::Netlist& circuit,
                                    const ConformanceOptions& options = {});

/// Sweep against a pre-compiled netlist: the spec binding is resolved once
/// and trials run chunked, one resettable Simulator per chunk.
ConformanceReport check_conformance(const sg::StateGraph& spec,
                                    const CompiledNetlist& compiled,
                                    const ConformanceOptions& options = {});

/// Net initial values for simulating `circuit` from the SG initial state:
/// signal rails (q and qb), const0/const1, and feedback-cut state nets.
std::vector<std::pair<netlist::NetId, bool>> initial_net_values(
    const sg::StateGraph& spec, const netlist::Netlist& circuit);

/// Name-resolved binding of a spec to a circuit.  find_net is a linear
/// scan, so resolving the signal<->net maps, initial values and observable
/// rails used to dominate short trials; a binding is computed once per
/// sweep and shared by every run against the same (spec, circuit) pair.
struct SpecBinding {
  SpecBinding(const sg::StateGraph& spec, const netlist::Netlist& circuit);

  std::vector<netlist::NetId> signal_net;  // per SG signal
  std::vector<int> net_signal;             // per net; -1 = internal
  std::vector<std::pair<netlist::NetId, bool>> initial_values;
  std::vector<netlist::NetId> observable;  // q and qb rails (toggle exclusion)

  /// Dense successor table over the spec: state x signal x polarity -> next
  /// state, -1 when the label is not enabled.  add_edge rejects duplicate
  /// labels, so the table is exactly StateGraph::successor without the
  /// per-lookup edge scan (one lookup per committed observable net event).
  int num_signals = 0;
  std::vector<sg::StateId> successor;
  sg::StateId next_state(sg::StateId s, int signal, bool rising) const {
    const std::size_t i =
        (static_cast<std::size_t>(s) * static_cast<std::size_t>(num_signals) +
         static_cast<std::size_t>(signal)) * 2 + (rising ? 1 : 0);
    return successor[i];
  }
};

/// A runtime fault action during a closed-loop run: at `time`, either pin
/// `net` to `value` (force) or un-pin it (release).  A glitch pulse is a
/// force/release pair `width` apart.
struct TimedInjection {
  double time = 0.0;
  netlist::NetId net = -1;
  bool release = false;
  bool value = false;
};

/// Full configuration of a single closed-loop run — the unit the fault
/// harness perturbs.  `check_conformance` is a seed sweep over these.
struct ClosedLoopConfig {
  /// Delay assignment (seed / explicit vector / overrides) and event
  /// budget for the run.
  SimulatorOptions sim;
  /// Environment RNG stream; 0 derives it from sim.seed (the default
  /// coupling used by the seed sweep).
  std::uint64_t env_seed = 0;
  int max_transitions = 200;
  double input_delay_min = 0.1;
  double input_delay_max = 12.0;
  double time_limit = 1e6;
  bool fundamental_mode = false;
  /// Nets pinned for the whole run immediately after initialization
  /// (stuck-at faults).
  std::vector<std::pair<netlist::NetId, bool>> forces;
  /// Timed force/release actions, interleaved with circuit events in time
  /// order (glitch injection).  Must be sorted by time.
  std::vector<TimedInjection> injections;
  /// Extra observer, invoked on every committed net change before the
  /// conformance check (margin probes and other instrumentation).
  NetObserver observer;
  /// Called once right after Simulator::initialize, before any force or
  /// event — probes capture the settled initial net values here (the
  /// observer only sees changes committed while stepping).
  std::function<void(const Simulator&)> on_initialized;
};

/// Run ONE closed-loop simulation of `circuit` against `spec` under the
/// given configuration; returns a single-run report (runs == 1).  When
/// `recorder` is non-null every net change is also captured for VCD
/// export.  This is the primitive under `check_conformance`,
/// `record_vcd_trace` and the src/faults harness.
ConformanceReport run_closed_loop(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                  const ClosedLoopConfig& config,
                                  VcdRecorder* recorder = nullptr);

/// Hot-path variant over a pre-compiled netlist and pre-resolved binding.
/// When `reuse` is non-null it is reset() under config.sim and used for
/// the run (it must have been built from `compiled`); otherwise a local
/// Simulator is constructed.  Behaviour is byte-identical either way.
ConformanceReport run_closed_loop(const sg::StateGraph& spec, const SpecBinding& binding,
                                  const CompiledNetlist& compiled,
                                  const ClosedLoopConfig& config,
                                  VcdRecorder* recorder = nullptr,
                                  Simulator* reuse = nullptr);

/// Run one closed-loop simulation and return its full waveform as VCD
/// text (see sim/vcd.hpp) together with the conformance outcome.
struct TracedRun {
  std::string vcd;
  ConformanceReport report;
};
TracedRun record_vcd_trace(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                           std::uint64_t seed = 1, int max_transitions = 100);

}  // namespace nshot::sim
