#include "serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace nshot::serve {

namespace {

int unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  NSHOT_REQUIRE_CODE(fd >= 0, ErrorCode::kInternal,
                     std::string("socket: ") + std::strerror(errno));
  return fd;
}

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  NSHOT_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

/// Write the whole buffer, tolerating short writes; false when the peer
/// is gone (EPIPE & friends — the caller just drops the response).
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct SocketListener::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    ::close(fd);  // deferred until the last in-flight callback lets go
  }

  const int fd;  // immutable: the reader thread polls it lock-free
  std::mutex write_mutex;
  bool open = true;  // guarded by write_mutex

  /// Thread-safe response write; silently drops when the peer hung up.
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!open) return;
    if (!send_all(fd, line + "\n")) open = false;
  }

  /// Unblock the reader and stop further writes; the fd itself stays
  /// open (and harmless) until the destructor.
  void shutdown_now() {
    std::lock_guard<std::mutex> lock(write_mutex);
    open = false;
    ::shutdown(fd, SHUT_RDWR);
  }
};

SocketListener::SocketListener(std::string path, Server& server)
    : path_(std::move(path)), server_(server) {
  listen_fd_ = unix_socket();
  ::unlink(path_.c_str());  // replace a stale socket file
  const sockaddr_un addr = socket_address(path_);
  NSHOT_REQUIRE_CODE(
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      ErrorCode::kInternal, "bind " + path_ + ": " + std::strerror(errno));
  NSHOT_REQUIRE_CODE(::listen(listen_fd_, 64) == 0, ErrorCode::kInternal,
                     std::string("listen: ") + std::strerror(errno));
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketListener::~SocketListener() { stop(); }

void SocketListener::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopped_) {
      connection->shutdown_now();
      return;
    }
    connections_.push_back(connection);
    readers_.emplace_back([this, connection] { reader_loop(connection); });
  }
}

void SocketListener::reader_loop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection torn down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (line.empty()) continue;
      WireRequest wire;
      try {
        wire = parse_request(line);
      } catch (const Error& e) {
        connection->write_line(rejection("", e.code(), e.what()).to_json());
        continue;
      } catch (const std::exception& e) {
        connection->write_line(rejection("", ErrorCode::kInputInvalid, e.what()).to_json());
        continue;
      }
      // The connection shared_ptr in the callback keeps the write path
      // alive until this request's response lands, even if the reader
      // has exited by then.
      server_.enqueue(wire, [connection](const Response& response) {
        connection->write_line(response.to_json());
      });
    }
  }
}

void SocketListener::stop() {
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
    readers.swap(readers_);
  }
  for (auto& connection : connections) connection->shutdown_now();
  for (std::thread& reader : readers)
    if (reader.joinable()) reader.join();
  ::unlink(path_.c_str());
}

SocketClient::SocketClient(const std::string& path) {
  fd_ = unix_socket();
  const sockaddr_un addr = socket_address(path);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kInternal, "connect " + path + ": " + detail);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketClient::send(const WireRequest& wire) { send_line(request_json(wire)); }

void SocketClient::send_line(const std::string& line) {
  NSHOT_REQUIRE_CODE(send_all(fd_, line + "\n"), ErrorCode::kInternal,
                     "server closed the connection");
}

std::string SocketClient::recv_line() {
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      const std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return "";  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string SocketClient::roundtrip(const WireRequest& wire) {
  send(wire);
  return recv_line();
}

}  // namespace nshot::serve
