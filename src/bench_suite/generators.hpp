// Parametric generators for the benchmark reconstructions (DESIGN.md §5).
//
// The original .g files of the Table 2 suite are not redistributable /
// available offline, so each named benchmark is rebuilt from classic
// asynchronous-controller structures:
//
//  * staged cycles   — marked-graph rings of barrier-synchronized stages
//    (the skeleton of handshake and pipeline controllers).  Marked graphs
//    are persistent, hence the generated SGs are semi-modular by
//    construction; the alternating stage polarities keep codes phase-
//    distinguishable (CSC), which the test-suite verifies per benchmark.
//  * choice cycles   — a free-choice place between input transitions
//    selects one of several handshake branches (input choices).
//  * OR-causality cells — the paper's Figure 1 pattern (an output fires
//    when the FIRST of two concurrent inputs arrives), the canonical
//    non-distributive behaviour; the cell is closed with an acknowledge
//    input so it satisfies CSC.
//  * SG products     — interleaved product of component SGs on disjoint
//    signals, used to scale non-distributive designs to the state counts
//    of the industrial circuits in Table 2.
#pragma once

#include <string>
#include <vector>

#include "sg/state_graph.hpp"
#include "stg/stg.hpp"

namespace nshot::bench_suite {

/// Render a staged-cycle STG as .g text.  `stages[i]` lists the signal
/// transitions of stage i (e.g. {"a+", "b+"}); every transition of stage i
/// is joined to every transition of stage i+1 (barrier), and the cycle
/// closes from the last stage to the first (which holds the initial
/// marking).
std::string staged_cycle_g(const std::string& name, const std::vector<std::string>& inputs,
                           const std::vector<std::string>& outputs,
                           const std::vector<std::vector<std::string>>& stages);

/// Render a choice-cycle STG as .g text: a free-choice place feeds the
/// first transition of every branch (these must be input transitions);
/// each branch is a serial sequence returning to the choice place.
std::string choice_cycle_g(const std::string& name, const std::vector<std::string>& inputs,
                           const std::vector<std::string>& outputs,
                           const std::vector<std::vector<std::string>>& branches);

/// Render a parallel-chains STG as .g text: a master signal `m` rises,
/// releasing every chain; the signals of one chain rise in sequence while
/// the chains run concurrently; when all chains complete, m falls and the
/// chains fall the same way.  This is the shape of N-way bus/broadcast
/// controllers (used for the large Table 2 circuits); each non-first chain
/// signal is triggered by its predecessor, so the per-signal logic is
/// non-trivial.
std::string parallel_chains_g(const std::string& name, const std::string& master,
                              bool master_is_input,
                              const std::vector<std::vector<std::string>>& chains,
                              const std::vector<std::string>& inputs,
                              const std::vector<std::string>& outputs);

/// Parse .g text and build its state graph.
sg::StateGraph build_g(const std::string& g_text);

/// The Figure-1 OR-causality cell: inputs <p>a, <p>b rise concurrently and
/// output <p>c fires on the first arrival; an acknowledge input <p>d closes
/// the handshake so the cell satisfies CSC (16 states, non-distributive,
/// single traversal).
sg::StateGraph or_causality_cell(const std::string& name, const std::string& prefix);

/// Interleaved product of two SGs over disjoint signal sets.
sg::StateGraph sg_product(const sg::StateGraph& a, const sg::StateGraph& b,
                          const std::string& name);

/// Knobs for random_semimodular_g.  Everything is derived from `seed`
/// alone, so a soak campaign is reproducible from its base seed and the
/// per-circuit seeds (run_seed(base, i)) name individual failures.
struct RandomStgOptions {
  std::uint64_t seed = 1;
  /// Upper bound on non-master signals (the generator draws the actual
  /// count per family; >= 3 required so every family fits).
  int max_signals = 7;
};

/// A seeded random STG in .g text, drawn from the same structural families
/// as the benchmark reconstructions above — staged cycles, parallel
/// chains, and choice cycles.  Staged cycles and parallel chains are
/// marked graphs, hence persistent and semi-modular by construction;
/// choice cycles confine free choice to input transitions (allowed input
/// choice).  The circuit name encodes the seed ("rand<seed>"), so any
/// soak failure is reproducible from its manifest line alone.  Shapes are
/// drawn to usually satisfy CSC, but not every draw is implementable —
/// the soak harness counts kUnimplementable rejections as a classified
/// outcome, not an error.
std::string random_semimodular_g(const RandomStgOptions& options);

}  // namespace nshot::bench_suite
