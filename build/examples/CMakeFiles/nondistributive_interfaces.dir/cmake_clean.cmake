file(REMOVE_RECURSE
  "CMakeFiles/nondistributive_interfaces.dir/nondistributive_interfaces.cpp.o"
  "CMakeFiles/nondistributive_interfaces.dir/nondistributive_interfaces.cpp.o.d"
  "nondistributive_interfaces"
  "nondistributive_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nondistributive_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
