// assassin_cli — an end-to-end command-line driver mirroring the ASSASSIN
// compiler flow the paper automates [21]:
//
//   assassin_cli <file.g|file.sg>  synthesize an STG (.g) or state graph (.sg)
//   assassin_cli --benchmark NAME  synthesize a built-in Table 2 benchmark
//   assassin_cli --list            list the built-in benchmarks
//
// Options:
//   --exact          use exact (Quine-McCluskey) minimization per output
//   --no-share       disable AND-gate sharing across outputs
//   --solve-csc      resolve CSC violations by state-signal insertion
//                    (STG inputs only; mirrors the preprocessing of [6,18])
//   --netlist        print the synthesized netlist
//   --verilog        print the circuit as self-contained Verilog
//   --dot SIGNAL     print the SG as Graphviz DOT with SIGNAL's regions
//   --pla            print the minimized cover in PLA format
//   --regions        print the region analysis per non-input signal
//   --check N        run N closed-loop conformance simulations (default 8)
//   --vcd FILE       write one closed-loop simulation trace as VCD
//   --baselines      also run the SIS-like / SYN-like / complex-gate flows
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "csc/csc_solver.hpp"
#include "logic/pla.hpp"
#include "netlist/verilog.hpp"
#include "nshot/synthesis.hpp"
#include "sg/dot.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "stg/sg_format.hpp"

namespace {

void usage() {
  std::puts(
      "usage: assassin_cli (<file.g|file.sg> | --benchmark NAME | --list)\n"
      "       [--exact] [--no-share] [--solve-csc] [--netlist] [--verilog]\n"
      "       [--dot SIGNAL] [--pla] [--regions] [--check N] [--vcd FILE]\n"
      "       [--baselines]");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nshot;
  std::string input_file, benchmark, dot_signal, vcd_file;
  bool list = false, exact = false, no_share = false, solve_csc = false;
  bool print_netlist = false, print_pla = false, print_regions = false, run_baselines = false;
  bool print_verilog = false, print_dot = false;
  int check_runs = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") list = true;
    else if (arg == "--benchmark" && i + 1 < argc) benchmark = argv[++i];
    else if (arg == "--exact") exact = true;
    else if (arg == "--no-share") no_share = true;
    else if (arg == "--solve-csc") solve_csc = true;
    else if (arg == "--netlist") print_netlist = true;
    else if (arg == "--verilog") print_verilog = true;
    else if (arg == "--dot" && i + 1 < argc) { print_dot = true; dot_signal = argv[++i]; }
    else if (arg == "--pla") print_pla = true;
    else if (arg == "--regions") print_regions = true;
    else if (arg == "--baselines") run_baselines = true;
    else if (arg == "--check" && i + 1 < argc) check_runs = std::atoi(argv[++i]);
    else if (arg == "--vcd" && i + 1 < argc) vcd_file = argv[++i];
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else if (!arg.empty() && arg[0] != '-') input_file = arg;
    else { usage(); return 2; }
  }

  if (list) {
    std::printf("%-15s %8s %6s %s\n", "name", "states*", "distr", "(* state count in the paper)");
    for (const auto& info : bench_suite::all_benchmarks())
      std::printf("%-15s %8d %6s\n", info.name.c_str(), info.paper_states,
                  info.nondistributive ? "no" : "yes");
    return 0;
  }
  if (input_file.empty() && benchmark.empty()) {
    usage();
    return 2;
  }

  try {
    sg::StateGraph graph = [&] {
      if (!benchmark.empty()) return bench_suite::build_benchmark(benchmark);
      std::ifstream stream(input_file);
      if (!stream) throw Error("cannot open " + input_file);
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const bool is_sg_format = input_file.size() >= 3 &&
                                input_file.compare(input_file.size() - 3, 3, ".sg") == 0;
      if (is_sg_format) return stg::parse_sg(buffer.str());
      const stg::Stg net = stg::parse_g(buffer.str());
      if (solve_csc) {
        const auto solved = csc::solve_csc(net);
        if (!solved) throw Error("CSC solving failed within the signal budget");
        std::printf("CSC solved with %d inserted state signal(s):\n", solved->signals_added);
        for (const std::string& note : solved->insertions) std::printf("  %s\n", note.c_str());
        return solved->graph;
      }
      return stg::build_state_graph(net);
    }();

    std::printf("specification: %s — %d states, %zu input / %zu non-input signals\n",
                graph.name().c_str(), graph.num_states(), graph.input_signals().size(),
                graph.noninput_signals().size());
    std::printf("distributive: %s, single traversal: %s\n",
                sg::is_distributive(graph) ? "yes" : "no",
                sg::is_single_traversal(graph) ? "yes" : "no");

    if (print_regions)
      for (const auto& regions : sg::compute_all_regions(graph))
        std::printf("%s", regions.to_string(graph).c_str());

    core::SynthesisOptions options;
    options.exact = exact;
    options.share_products = !no_share;
    const core::SynthesisResult result = core::synthesize(graph, options);
    std::printf("\n%s", core::describe(graph, result).c_str());

    if (print_pla) std::printf("\n%s", logic::write_pla(result.cover).c_str());
    if (print_netlist) std::printf("\n%s", result.circuit.to_string().c_str());
    if (print_verilog)
      std::printf("\n%s",
                  netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard())
                      .c_str());
    if (print_dot) {
      sg::DotOptions dot_options;
      dot_options.highlight_signal = graph.find_signal(dot_signal);
      std::printf("\n%s", sg::to_dot(graph, dot_options).c_str());
    }

    if (!vcd_file.empty()) {
      const sim::TracedRun traced = sim::record_vcd_trace(graph, result.circuit);
      std::ofstream out(vcd_file);
      if (!out) throw Error("cannot write " + vcd_file);
      out << traced.vcd;
      std::printf("\nwrote VCD trace (%ld transitions, %.1f time units) to %s\n",
                  traced.report.external_transitions, traced.report.simulated_time,
                  vcd_file.c_str());
    }

    if (check_runs > 0) {
      sim::ConformanceOptions copt;
      copt.runs = check_runs;
      const sim::ConformanceReport report = sim::check_conformance(graph, result.circuit, copt);
      std::printf("\nconformance: %s\n", report.summary().c_str());
      if (!report.clean()) return 1;
    }

    if (run_baselines) {
      auto show = [&](const char* name, const baselines::BaselineOutcome& outcome) {
        if (outcome.ok())
          std::printf("%-13s area %7.0f  delay %4.1f\n", name, outcome.result->stats.area,
                      outcome.result->stats.delay);
        else
          std::printf("%-13s %s\n", name, baselines::failure_text(*outcome.failure).c_str());
      };
      std::printf("\nbaseline comparison:\n");
      std::printf("%-13s area %7.0f  delay %4.1f\n", "n-shot", result.stats.area,
                  result.stats.delay);
      show("sis-like", baselines::synthesize_sis_like(graph));
      show("syn-like", baselines::synthesize_syn_like(graph));
      show("complex-gate", baselines::synthesize_complex_gate(graph));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
