// Regenerates Figure 6: the response of the (structural, three-stage) MHS
// flip-flop to hazardous inputs.  A hazardous pulse stream excites the set
// rail and, later, the reset rail; the figure shows the intermediate
// slave-set / slave-reset signals and the clean q/qb outputs.  The ASCII
// waveforms below play the same roles as the paper's analog plots: the
// master stage sees the raw stream, the filter stage removes sub-threshold
// activity (hazard-free up-transitions), and the slave stage removes the
// residual hazardous down-transitions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "gatelib/gate_library.hpp"
#include "sim/event_sim.hpp"
#include "sim/mhs_structural.hpp"

namespace {

using namespace nshot;
using netlist::NetId;

struct Trace {
  std::map<NetId, std::vector<std::pair<double, bool>>> changes;

  void record(NetId n, bool v, double t) { changes[n].push_back({t, v}); }

  bool value_at(NetId n, bool initial, double t) const {
    bool v = initial;
    const auto it = changes.find(n);
    if (it == changes.end()) return v;
    for (const auto& [time, value] : it->second) {
      if (time > t) break;
      v = value;
    }
    return v;
  }
};

void print_waveform(const char* label, const Trace& trace, NetId net, bool initial, double t_end,
                    double step) {
  std::printf("%-13s ", label);
  for (double t = 0.0; t <= t_end; t += step)
    std::putchar(trace.value_at(net, initial, t) ? '#' : '_');
  std::putchar('\n');
}

void run_figure() {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  sim::StructuralMhs model = sim::build_structural_mhs(lib.mhs_threshold());
  sim::SimulatorOptions options;
  options.randomize_delays = false;
  sim::Simulator sim(model.circuit, lib, options);
  Trace trace;
  sim.set_observer([&](NetId n, bool v, double t) { trace.record(n, v, t); });
  sim.initialize({{model.nets.set_in, false},
                  {model.nets.reset_in, false},
                  {model.nets.master_set, false},
                  {model.nets.master_reset, false},
                  {model.nets.q, false},
                  {model.nets.qb, true}});

  // Hazardous set stream: sub-threshold spikes, then a real excitation
  // (as produced by a glitching SOP while traversing ER(+a)).
  double t = 2.0;
  for (const double width : {0.08, 0.12, 0.1}) {
    sim.set_input(model.nets.set_in, true, t);
    sim.set_input(model.nets.set_in, false, t + width);
    t += 1.0;
  }
  sim.set_input(model.nets.set_in, true, 6.0);
  sim.set_input(model.nets.set_in, false, 8.5);

  // Later, a hazardous reset stream.
  for (const double width : {0.1, 0.09}) {
    sim.set_input(model.nets.reset_in, true, 14.0 + (width == 0.1 ? 0.0 : 1.0));
    sim.set_input(model.nets.reset_in, false, 14.0 + (width == 0.1 ? 0.0 : 1.0) + width);
  }
  sim.set_input(model.nets.reset_in, true, 17.0);
  sim.set_input(model.nets.reset_in, false, 19.5);
  sim.run_until(1000.0);

  const double t_end = 26.0, step = 0.25;
  std::printf("Figure 6: response of the MHS flip-flop to hazardous inputs\n");
  std::printf("(time ->, one column per %.2f units; '#' = 1, '_' = 0)\n\n", step);
  print_waveform("set_in", trace, model.nets.set_in, false, t_end, step);
  print_waveform("reset_in", trace, model.nets.reset_in, false, t_end, step);
  print_waveform("master_set", trace, model.nets.master_set, false, t_end, step);
  print_waveform("master_reset", trace, model.nets.master_reset, false, t_end, step);
  print_waveform("slave_set", trace, model.nets.slave_set, false, t_end, step);
  print_waveform("slave_reset", trace, model.nets.slave_reset, false, t_end, step);
  print_waveform("q", trace, model.nets.q, false, t_end, step);
  print_waveform("qb", trace, model.nets.qb, true, t_end, step);

  auto count = [&](NetId n) {
    const auto it = trace.changes.find(n);
    return it == trace.changes.end() ? 0 : static_cast<int>(it->second.size());
  };
  std::printf(
      "\ntransition counts: set_in %d, slave_set %d, q %d —\n"
      "the two filtering stages reduce a hazardous stream to one clean\n"
      "up-transition and one clean down-transition at the output.\n",
      count(model.nets.set_in), count(model.nets.slave_set), count(model.nets.q));
}

void bm_structural_mhs(benchmark::State& state) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  for (auto _ : state) {
    sim::StructuralMhs model = sim::build_structural_mhs(lib.mhs_threshold());
    benchmark::DoNotOptimize(model.circuit.num_gates());
  }
}
BENCHMARK(bm_structural_mhs);

}  // namespace

int main(int argc, char** argv) {
  run_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
