// Property-based determinism tests for the parallel execution engine:
// over randomly generated controllers, every parallelized sweep must be
// byte-identical at jobs=1 and jobs=8, and each trial's outcome must be a
// pure function of (base_seed, run) — the invariant the by-index merge
// relies on.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "faults/adversarial.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

/// Random staged-cycle controller (same generator family as
/// random_controller_test.cpp).
std::string random_staged_cycle(Rng& rng, int index) {
  const int num_signals = 3 + static_cast<int>(rng.next_below(6));
  std::vector<std::string> names, inputs, outputs;
  for (int i = 0; i < num_signals; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    (rng.next_bool(0.5) ? inputs : outputs).push_back(name);
  }
  if (inputs.empty()) {
    inputs.push_back(outputs.back());
    outputs.pop_back();
  }
  if (outputs.empty()) {
    outputs.push_back(inputs.back());
    inputs.pop_back();
  }
  std::vector<std::vector<std::string>> rising;
  std::vector<std::string> pool = names;
  while (!pool.empty()) {
    const std::size_t take = 1 + rng.next_below(std::min<std::size_t>(pool.size(), 3));
    std::vector<std::string> stage;
    for (std::size_t i = 0; i < take; ++i) {
      stage.push_back(pool.back() + "+");
      pool.pop_back();
    }
    rising.push_back(std::move(stage));
  }
  std::vector<std::vector<std::string>> stages = rising;
  for (const auto& stage : rising) {
    std::vector<std::string> falling;
    for (const std::string& t : stage) falling.push_back(t.substr(0, t.size() - 1) + "-");
    stages.push_back(std::move(falling));
  }
  return bench_suite::staged_cycle_g("det" + std::to_string(index), inputs, outputs, stages);
}

/// Build a random implementable controller with at least one non-input
/// signal, or an empty optional when the draw has none.
struct Generated {
  sg::StateGraph graph;
  core::SynthesisResult result;
};

std::optional<Generated> generate(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9E3779B9ULL + 3);
  const std::string g_text = random_staged_cycle(rng, seed);
  sg::StateGraph graph = bench_suite::build_g(g_text);
  if (graph.noninput_signals().empty()) return std::nullopt;
  core::SynthesisResult result = core::synthesize(graph);
  return Generated{std::move(graph), std::move(result)};
}

std::string conformance_fingerprint(const sim::ConformanceReport& r) {
  std::string out = std::to_string(r.runs) + "/" + std::to_string(r.external_transitions) + "/" +
                    std::to_string(r.internal_toggles) + "/" + std::to_string(r.absorbed_pulses) +
                    "/" + std::to_string(r.simulated_time) + "/" + std::to_string(r.deadlocks) +
                    "/" + std::to_string(r.budget_exhausted);
  for (const sim::ConformanceViolation& v : r.violations)
    out += "|" + std::to_string(v.seed) + "@" + std::to_string(v.time) + ":" + v.description;
  return out;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismTest, ConformanceSweepIsJobsInvariant) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 100;
  options.runs = 12;
  options.max_transitions = 60;

  options.jobs = 1;
  const sim::ConformanceReport serial = sim::check_conformance(gen->graph, gen->result.circuit, options);
  options.jobs = 8;
  const sim::ConformanceReport parallel =
      sim::check_conformance(gen->graph, gen->result.circuit, options);

  EXPECT_EQ(conformance_fingerprint(serial), conformance_fingerprint(parallel));
}

TEST_P(ParallelDeterminismTest, TrialOutcomeDependsOnlyOnBaseSeedAndRun) {
  // The sweep of N runs must equal the merge of N independent single runs
  // configured with run_seed(base, r) — i.e. no hidden state couples the
  // trials, which is exactly what makes the by-index merge sound.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 5;
  options.runs = 6;
  options.max_transitions = 60;
  options.jobs = 8;
  const sim::ConformanceReport sweep =
      sim::check_conformance(gen->graph, gen->result.circuit, options);

  sim::ConformanceReport merged;
  merged.runs = options.runs;
  for (int r = 0; r < options.runs; ++r) {
    sim::ClosedLoopConfig config;
    config.sim.seed = run_seed(options.seed, r);
    config.sim.randomize_delays = true;
    config.sim.max_events = options.max_events;
    config.max_transitions = options.max_transitions;
    config.input_delay_min = options.input_delay_min;
    config.input_delay_max = options.input_delay_max;
    config.time_limit = options.time_limit;
    config.fundamental_mode = options.fundamental_mode;
    const sim::ConformanceReport one =
        sim::run_closed_loop(gen->graph, gen->result.circuit, config);
    merged.external_transitions += one.external_transitions;
    merged.internal_toggles += one.internal_toggles;
    merged.absorbed_pulses += one.absorbed_pulses;
    merged.simulated_time += one.simulated_time;
    merged.deadlocks += one.deadlocks;
    merged.budget_exhausted += one.budget_exhausted;
    for (const sim::ConformanceViolation& v : one.violations) merged.violations.push_back(v);
  }

  EXPECT_EQ(conformance_fingerprint(sweep), conformance_fingerprint(merged));
}

TEST_P(ParallelDeterminismTest, StressReportJsonIsByteIdenticalAcrossJobs) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  faults::StressOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 7 + 1;
  options.margin_runs = 3;
  options.run.max_transitions = 60;
  options.adversarial.restarts = 2;
  options.adversarial.iterations = 15;
  options.adversarial.run.max_transitions = 60;

  options.jobs = 1;
  options.adversarial.jobs = 1;
  const std::string serial = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "det", options));

  options.jobs = 8;
  options.adversarial.jobs = 8;
  const std::string parallel = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "det", options));

  EXPECT_EQ(serial, parallel);
}

TEST_P(ParallelDeterminismTest, AdversarialSearchIsJobsInvariant) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  faults::AdversarialOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 9;
  options.restarts = 3;
  options.iterations = 20;
  options.run.max_transitions = 60;

  options.jobs = 1;
  const faults::AdversarialResult serial =
      faults::adversarial_delay_search(gen->graph, gen->result.circuit, options);
  options.jobs = 8;
  const faults::AdversarialResult parallel =
      faults::adversarial_delay_search(gen->graph, gen->result.circuit, options);

  EXPECT_EQ(serial.violation_found, parallel.violation_found);
  EXPECT_EQ(serial.best_slack, parallel.best_slack);
  EXPECT_EQ(serial.delays, parallel.delays);
  EXPECT_EQ(serial.env_seed, parallel.env_seed);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
}

TEST_P(ParallelDeterminismTest, SynthesisIsJobsInvariant) {
  // Per-signal analyses and per-output exact minimization merge in index
  // order; the synthesized implementation must not depend on jobs.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  for (const bool exact : {false, true}) {
    core::SynthesisOptions options;
    options.exact = exact;
    options.memoize_minimization = false;  // isolate the parallel paths
    options.jobs = 1;
    const core::SynthesisResult serial = core::synthesize(gen->graph, options);
    options.jobs = 8;
    const core::SynthesisResult parallel = core::synthesize(gen->graph, options);

    EXPECT_EQ(core::describe(gen->graph, serial), core::describe(gen->graph, parallel))
        << "exact=" << exact;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace nshot
