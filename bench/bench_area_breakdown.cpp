// Area breakdown of the N-SHOT architecture (Figure 3's three parts):
// how much of each circuit is the hazardous SOP core (AND plane + OR
// trees), how much is the MHS flip-flops (with their integrated
// acknowledgement gates), and how much is delay compensation (expected:
// none — Eq. 1).  This quantifies the architecture's fixed per-signal
// overhead versus the logic the conventional minimizer optimizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "gatelib/gate_library.hpp"
#include "nshot/synthesis.hpp"

namespace {

using namespace nshot;
using gatelib::GateType;

void print_breakdown() {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  std::printf("N-SHOT area breakdown (library units)\n\n");
  std::printf("%-15s %8s | %8s %8s %8s %8s | %7s\n", "circuit", "total", "AND", "OR", "MHS",
              "delay", "MHS %%");
  double grand_total = 0.0, grand_mhs = 0.0;
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    const core::SynthesisResult result = core::synthesize(g);
    double and_area = 0.0, or_area = 0.0, mhs_area = 0.0, delay_area = 0.0;
    for (const auto& gate : result.circuit.gates()) {
      const double area = (gate.type == GateType::kDelayLine ||
                           gate.type == GateType::kInertialDelay)
                              ? lib.area(gate.type, 1)
                              : lib.area(gate.type, static_cast<int>(gate.inputs.size()));
      switch (gate.type) {
        case GateType::kAnd: and_area += area; break;
        case GateType::kOr: or_area += area; break;
        case GateType::kMhsFlipFlop: mhs_area += area; break;
        case GateType::kDelayLine:
        case GateType::kInertialDelay: delay_area += area; break;
        default: break;
      }
    }
    const double total = result.stats.area;
    grand_total += total;
    grand_mhs += mhs_area;
    std::printf("%-15s %8.0f | %8.0f %8.0f %8.0f %8.0f | %6.1f%%\n", info.name.c_str(), total,
                and_area, or_area, mhs_area, delay_area, 100.0 * mhs_area / total);
  }
  std::printf(
      "\nsuite totals: %.0f area, %.1f%% in MHS cells.  The storage overhead is\n"
      "the price of letting a conventional minimizer produce the (cheap,\n"
      "hazardous) SOP core; delay compensation contributes nothing (Eq. 1).\n",
      grand_total, 100.0 * grand_mhs / grand_total);
}

void bm_stats(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("wrdatab");
  const core::SynthesisResult result = core::synthesize(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(result.circuit.stats(gatelib::GateLibrary::standard()).area);
}
BENCHMARK(bm_stats);

}  // namespace

int main(int argc, char** argv) {
  print_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
