// Structural three-stage model of the MHS flip-flop (Figure 5):
//
//   master RS latch pair  ->  hazard filter  ->  slave RS latch pair
//
// The master latches convert input pulses into levels (they can bounce when
// set and reset excitations overlap, which is what the acknowledgement
// scheme of the architecture prevents in a complete circuit).  The filter
// is modelled with inertial delay elements of threshold ω — the digital
// abstraction of the "degenerated inverter" stage: excitations narrower
// than ω are absorbed, so the filter's up-transitions are hazard-free
// (first filtering stage) while its down-transitions may still be hazardous
// (Figure 6).  The slave RS latches remove the hazardous down-transitions
// (second filtering stage) and provide the dual-rail q/qb outputs.
//
// This model exists to regenerate the Figure 6 waveforms and to
// property-test the behavioural MHS primitive of the event simulator
// against an independent structural realization.
#pragma once

#include "netlist/netlist.hpp"

namespace nshot::sim {

/// Net names exposed by the structural model.
struct StructuralMhsNets {
  netlist::NetId set_in = -1;
  netlist::NetId reset_in = -1;
  netlist::NetId master_set = -1;
  netlist::NetId master_reset = -1;
  netlist::NetId slave_set = -1;   // filter output, set side
  netlist::NetId slave_reset = -1; // filter output, reset side
  netlist::NetId q = -1;
  netlist::NetId qb = -1;
};

struct StructuralMhs {
  netlist::Netlist circuit;
  StructuralMhsNets nets;
};

/// Build the three-stage structural MHS with filter threshold `omega`.
StructuralMhs build_structural_mhs(double omega);

}  // namespace nshot::sim
