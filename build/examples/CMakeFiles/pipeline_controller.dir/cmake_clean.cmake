file(REMOVE_RECURSE
  "CMakeFiles/pipeline_controller.dir/pipeline_controller.cpp.o"
  "CMakeFiles/pipeline_controller.dir/pipeline_controller.cpp.o.d"
  "pipeline_controller"
  "pipeline_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
