# Empty compiler generated dependencies file for nshot_sim.
# This may be replaced when dependencies are built.
