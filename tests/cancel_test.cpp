// Cooperative-cancellation tests: CancelToken/CancelScope semantics,
// checkpoint() behavior with and without deadlines, parallel_for draining
// under a fired token with identical observable state at every --jobs
// value, cross-thread token propagation through the pool, and the
// Watchdog converting a wall-clock overrun into a prompt cancellation for
// work that never reads the clock itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace nshot::exec {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Token mechanics
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.reason().empty());
  token.checkpoint();  // must not throw
  // No token installed on this thread either.
  EXPECT_FALSE(cancel_requested());
  checkpoint();  // must not throw
}

TEST(CancelTokenTest, CancelFiresOnceWithFirstReason) {
  const CancelToken token;
  token.cancel("first");
  token.cancel("second");  // later calls no-op
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "first");
  try {
    token.checkpoint();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
}

TEST(CancelTokenTest, ScopeInstallsAndRestoresTheThreadToken) {
  const CancelToken token;
  {
    const CancelScope scope(token);
    EXPECT_TRUE(current_token().same_as(token));
    token.cancel("stop");
    EXPECT_TRUE(cancel_requested());
    EXPECT_THROW(checkpoint(), Error);
  }
  // Restored: the fired token is no longer current.
  EXPECT_FALSE(cancel_requested());
  checkpoint();
}

TEST(CancelTokenTest, ScopesNest) {
  const CancelToken outer;
  const CancelToken inner;
  const CancelScope outer_scope(outer);
  {
    const CancelScope inner_scope(inner);
    EXPECT_TRUE(current_token().same_as(inner));
  }
  EXPECT_TRUE(current_token().same_as(outer));
}

TEST(CancelTokenTest, DeadlineTokenFiresAfterBudget) {
  const CancelToken token = CancelToken::with_deadline(1.0);
  const auto start = Clock::now();
  while (!token.cancelled() && ms_since(start) < 2000.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.cancelled());
  EXPECT_DOUBLE_EQ(token.remaining_ms(), 0.0);
}

TEST(CancelTokenTest, NoDeadlineMeansInfiniteRemaining) {
  const CancelToken token;
  EXPECT_GT(token.remaining_ms(), 1e12);
}

// ---------------------------------------------------------------------------
// parallel_for under cancellation
// ---------------------------------------------------------------------------

// A fired token stops a sweep before any item runs — at every jobs value
// the observable state is identical (zero items executed, one clean
// deadline-exceeded error), which is the cancellation exception to the
// engine's "every item runs" contract.
TEST(CancelParallelForTest, FiredTokenDrainsIdenticallyAtAnyJobs) {
  for (const int jobs : {1, 2, 8}) {
    const CancelToken token;
    token.cancel("batch aborted");
    const CancelScope scope(token);
    std::atomic<int> ran{0};
    try {
      parallel_for(
          64, [&](int) { ran.fetch_add(1); }, jobs, /*grain=*/1);
      FAIL() << "expected Error at jobs=" << jobs;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded) << "jobs=" << jobs;
    }
    EXPECT_EQ(ran.load(), 0) << "jobs=" << jobs;
  }
}

// A deadline that fires mid-sweep cancels the remaining chunks promptly:
// the sweep throws kDeadlineExceeded and does not run to completion.
TEST(CancelParallelForTest, MidFlightDeadlineCancelsTheSweep) {
  for (const int jobs : {1, 8}) {
    const CancelToken token = CancelToken::with_deadline(5.0);
    const CancelScope scope(token);
    std::atomic<int> ran{0};
    try {
      parallel_for(
          100000,
          [&](int) {
            ran.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            checkpoint();
          },
          jobs, /*grain=*/1);
      FAIL() << "expected Error at jobs=" << jobs;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded) << "jobs=" << jobs;
    }
    EXPECT_LT(ran.load(), 100000) << "jobs=" << jobs;
  }
}

// ThreadPool::submit captures the submitting thread's token, so a
// parallel_for under a deadline is covered on worker threads too.
TEST(CancelParallelForTest, TokenPropagatesToPoolWorkers) {
  const CancelToken token;
  const CancelScope scope(token);
  std::atomic<int> covered{0};
  parallel_for(
      8,
      [&](int) {
        if (current_token().same_as(token)) covered.fetch_add(1);
      },
      8, /*grain=*/1);
  EXPECT_EQ(covered.load(), 8);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

// Work that only polls the atomic flag (never the clock) still observes an
// overrun promptly, because the watchdog thread fires the token.
TEST(WatchdogTest, FiresNonClockPollingWorkWithinBudget) {
  const CancelToken token;  // deliberately no deadline of its own
  const auto start = Clock::now();
  {
    const Watchdog watchdog(token, 10.0, "stage 'test' exceeded its deadline budget");
    while (!token.cancelled() && ms_since(start) < 5000.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "stage 'test' exceeded its deadline budget");
  // Acceptance bound: cancelled well within 2x the budget (generous slack
  // for a loaded CI host; the point is milliseconds, not seconds).
  EXPECT_LT(ms_since(start), 2000.0);
}

TEST(WatchdogTest, DisarmsOnDestruction) {
  const CancelToken token;
  { const Watchdog watchdog(token, 10000.0, "never fires"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(token.cancelled());
}

TEST(WatchdogTest, AlreadyFiredTokenKeepsItsReason) {
  const CancelToken token;
  token.cancel("earlier");
  { const Watchdog watchdog(token, 1.0, "later"); }
  EXPECT_EQ(token.reason(), "earlier");
}

}  // namespace
}  // namespace nshot::exec
