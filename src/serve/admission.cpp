#include "serve/admission.hpp"

#include <algorithm>

#include "exec/thread_pool.hpp"
#include <cstdio>

namespace nshot::serve {

FairShareQueue::FairShareQueue(AdmissionOptions options) : options_(options) {
  max_inflight_ = options_.max_inflight > 0
                      ? options_.max_inflight
                      : std::max(exec::ThreadPool::shared().num_threads() / 2, 2);
  options_.per_client_inflight = std::max(options_.per_client_inflight, 1);
  service_ms_ = options_.initial_service_ms;
}

bool FairShareQueue::offer(Ticket ticket, std::string* reason) {
  if (queued_ >= options_.max_queue) {
    if (reason)
      *reason = "backlog full (" + std::to_string(queued_) + " queued, cap " +
                std::to_string(options_.max_queue) + ")";
    return false;
  }
  if (ticket.deadline_ms > 0 && service_ms_ > 0) {
    // Projected wait before this request could start: everything already
    // queued, spread over the worker slots, one EWMA service time each.
    // Conservative on purpose — a request that would spend its whole
    // deadline waiting is cheaper to reject now than to time out later.
    const double projected_wait_ms =
        (static_cast<double>(queued_) / max_inflight_) * service_ms_;
    if (projected_wait_ms > ticket.deadline_ms) {
      if (reason) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "deadline %.3g ms cannot be met (projected queue wait %.3g ms)",
                      ticket.deadline_ms, projected_wait_ms);
        *reason = buf;
      }
      return false;
    }
  }
  ClientState& client = clients_[ticket.client];
  if (client.by_class.find(ticket.klass) == client.by_class.end())
    client.class_order.push_back(ticket.klass);
  if (std::find(client_order_.begin(), client_order_.end(), ticket.client) ==
      client_order_.end())
    client_order_.push_back(ticket.client);
  client.by_class[ticket.klass].push_back(std::move(ticket));
  ++client.queued;
  ++queued_;
  return true;
}

std::optional<Ticket> FairShareQueue::pop_from(ClientState& client) {
  // Round-robin across the client's class queues, FIFO within each.
  for (std::size_t i = 0; i < client.class_order.size(); ++i) {
    const std::size_t at = (client.next_class + i) % client.class_order.size();
    std::deque<Ticket>& queue = client.by_class[client.class_order[at]];
    if (queue.empty()) continue;
    Ticket ticket = std::move(queue.front());
    queue.pop_front();
    client.next_class = (at + 1) % client.class_order.size();
    --client.queued;
    --queued_;
    return ticket;
  }
  return std::nullopt;
}

std::optional<Ticket> FairShareQueue::take() {
  if (inflight_ >= max_inflight_ || queued_ == 0 || client_order_.empty())
    return std::nullopt;
  for (std::size_t i = 0; i < client_order_.size(); ++i) {
    const std::size_t at = (next_client_ + i) % client_order_.size();
    ClientState& client = clients_[client_order_[at]];
    if (client.queued == 0 || client.inflight >= options_.per_client_inflight) continue;
    if (std::optional<Ticket> ticket = pop_from(client)) {
      ++client.inflight;
      ++inflight_;
      next_client_ = (at + 1) % client_order_.size();
      return ticket;
    }
  }
  return std::nullopt;
}

void FairShareQueue::complete(const std::string& client_id, double service_ms) {
  const auto it = clients_.find(client_id);
  if (it != clients_.end() && it->second.inflight > 0) --it->second.inflight;
  if (inflight_ > 0) --inflight_;
  if (service_ms > 0) {
    const double a = options_.service_ewma_alpha;
    service_ms_ = a * service_ms + (1 - a) * service_ms_;
  }
}

std::vector<Ticket> FairShareQueue::evict_queued() {
  std::vector<Ticket> evicted;
  for (auto& [name, client] : clients_) {
    (void)name;
    for (auto& [klass, queue] : client.by_class) {
      (void)klass;
      for (Ticket& ticket : queue) evicted.push_back(std::move(ticket));
      queue.clear();
    }
    client.queued = 0;
  }
  queued_ = 0;
  // Keep FIFO admission order for deterministic drain reporting.
  std::sort(evicted.begin(), evicted.end(),
            [](const Ticket& a, const Ticket& b) { return a.seq < b.seq; });
  return evicted;
}

}  // namespace nshot::serve
