file(REMOVE_RECURSE
  "libnshot_stg.a"
)
