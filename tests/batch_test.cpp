// BatchRunner tests: manifest parsing (including the classified rejection
// of malformed lines), the crash-safe JSONL journal (resume, truncated
// trailing lines), bounded transient retry, stop_after crash simulation,
// and the summary's failure-class accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nshot/batch.hpp"
#include "sim/conformance.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

// The fast three-signal cycle used across the robustness tests.
const char* kXyzG = R"(
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
)";

BatchOptions quiet_options() {
  BatchOptions options;
  options.pipeline.collect_observability = false;
  options.pipeline.conformance.runs = 2;
  return options;
}

// Scratch file helper: unique path under the gtest temp dir, removed on
// destruction so journal tests do not leak state between runs.
struct ScratchFile {
  explicit ScratchFile(const std::string& name) : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~ScratchFile() { std::remove(path.c_str()); }
  void write(const std::string& text) const {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  std::string read() const {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }
  int lines() const {
    const std::string text = read();
    int n = 0;
    for (const char c : text) n += (c == '\n');
    return n;
  }
  std::string path;
};

// ---------------------------------------------------------------------------
// Manifest parsing
// ---------------------------------------------------------------------------

TEST(BatchManifestTest, ParsesIdsSpecsAndParams) {
  const auto entries = BatchRunner::parse_manifest(
      "# comment\n"
      "\n"
      "a bench:converta seed=7 runs=3\n"
      "b gen:42 deadline_ms=100\n"
      "c file:circuits/x.g\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id, "a");
  EXPECT_EQ(entries[0].spec, "bench:converta");
  EXPECT_EQ(entries[0].params.at("seed"), "7");
  EXPECT_EQ(entries[0].params.at("runs"), "3");
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[1].spec, "gen:42");
  EXPECT_EQ(entries[2].spec, "file:circuits/x.g");
}

TEST(BatchManifestTest, RejectsMalformedLinesWithTheLineNumber) {
  const auto expect_invalid = [](const std::string& text, const std::string& needle) {
    try {
      BatchRunner::parse_manifest(text);
      FAIL() << "expected Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_invalid("lonely_id\n", "line 1");
  expect_invalid("x nosuchscheme:foo\n", "line 1");
  expect_invalid("x bench:converta not_an_override\n", "line 1");
  expect_invalid("x bench:converta bogus_key=1\n", "bogus_key");
  expect_invalid("a bench:converta\n\na bench:vme\n", "duplicate");
}

TEST(BatchManifestTest, SoakManifestIsParsableAndSeeded) {
  const std::string text = BatchRunner::soak_manifest(5, 99, "deadline_ms=1000");
  const auto entries = BatchRunner::parse_manifest(text);
  ASSERT_EQ(entries.size(), 5u);
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.spec.rfind("gen:", 0), 0u) << entry.spec;
    EXPECT_EQ(entry.params.at("deadline_ms"), "1000");
  }
  // Distinct derived seeds per run.
  EXPECT_NE(entries[0].spec, entries[1].spec);
}

// ---------------------------------------------------------------------------
// Execution, isolation, retry
// ---------------------------------------------------------------------------

TEST(BatchRunTest, FailuresAreIsolatedAndClassified) {
  ScratchFile circuit("batch_test_xyz.g");
  circuit.write(kXyzG);
  BatchRunner runner(quiet_options());
  const auto entries = BatchRunner::parse_manifest(
      "good file:" + circuit.path + "\n" +
      "missing file:" + circuit.path + ".does-not-exist\n" +
      "good2 bench:converta runs=2\n");
  const BatchSummary summary = runner.run(entries);
  EXPECT_EQ(summary.total, 3);
  EXPECT_EQ(summary.executed, 3);
  EXPECT_EQ(summary.succeeded, 2);
  EXPECT_EQ(summary.failed, 1);
  ASSERT_EQ(summary.runs.size(), 3u);
  EXPECT_TRUE(summary.runs[0].ok);
  ASSERT_FALSE(summary.runs[1].ok);
  EXPECT_EQ(summary.runs[1].code, ErrorCode::kInputInvalid);
  EXPECT_TRUE(summary.runs[2].ok);
  EXPECT_EQ(summary.failures_by_code.at("input_invalid"), 1);
  // Deterministic failures are never retried.
  EXPECT_EQ(summary.runs[1].attempts, 1);
  EXPECT_EQ(summary.retries, 0);
}

TEST(BatchRunTest, TransientDeadlineFailuresAreRetried) {
  BatchOptions options = quiet_options();
  options.max_retries = 2;
  BatchRunner runner(options);
  // A sub-microsecond budget fails deterministically on every attempt, so
  // the runner spends exactly max_retries extra attempts before giving up.
  const auto entries = BatchRunner::parse_manifest("slow bench:converta deadline_ms=0.000001\n");
  const BatchSummary summary = runner.run(entries);
  ASSERT_EQ(summary.runs.size(), 1u);
  EXPECT_FALSE(summary.runs[0].ok);
  EXPECT_EQ(summary.runs[0].code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(summary.runs[0].attempts, 3);  // 1 + max_retries
  EXPECT_EQ(summary.retries, 2);
  EXPECT_EQ(summary.failures_by_code.at("deadline_exceeded"), 1);
}

// ---------------------------------------------------------------------------
// Journal: checkpointing, resume, truncation tolerance
// ---------------------------------------------------------------------------

TEST(BatchJournalTest, StopAfterSimulatesACrashAndResumeSkipsTheJournaledPrefix) {
  ScratchFile journal("batch_test_journal.jsonl");
  const auto entries =
      BatchRunner::parse_manifest(BatchRunner::soak_manifest(6, 7, "runs=2"));

  BatchOptions first = quiet_options();
  first.journal_path = journal.path;
  first.stop_after = 2;
  const BatchSummary crashed = BatchRunner(first).run(entries);
  EXPECT_TRUE(crashed.stopped_early);
  EXPECT_EQ(crashed.executed, 2);
  EXPECT_EQ(journal.lines(), 2);

  BatchOptions second = quiet_options();
  second.journal_path = journal.path;
  const BatchSummary resumed = BatchRunner(second).run(entries);
  EXPECT_FALSE(resumed.stopped_early);
  EXPECT_EQ(resumed.total, 6);
  EXPECT_EQ(resumed.resumed, 2);
  EXPECT_EQ(resumed.executed, 4);
  EXPECT_EQ(journal.lines(), 6);
  ASSERT_EQ(resumed.runs.size(), 6u);
  EXPECT_TRUE(resumed.runs[0].resumed);
  EXPECT_TRUE(resumed.runs[1].resumed);
  EXPECT_EQ(resumed.runs[0].attempts, 0);
  EXPECT_FALSE(resumed.runs[2].resumed);

  // A third invocation is a pure no-op: everything resumes.
  const BatchSummary done = BatchRunner(second).run(entries);
  EXPECT_EQ(done.resumed, 6);
  EXPECT_EQ(done.executed, 0);
}

TEST(BatchJournalTest, TruncatedTrailingLineIsReExecuted) {
  ScratchFile journal("batch_test_truncated.jsonl");
  ScratchFile circuit("batch_test_trunc_xyz.g");
  circuit.write(kXyzG);
  const auto entries = BatchRunner::parse_manifest(
      "a file:" + circuit.path + "\nb file:" + circuit.path + "\n");

  // Simulate a crash mid-write: run "a"'s line is complete, run "b"'s was
  // cut off before the closing brace.
  journal.write(
      "{\"id\":\"a\",\"status\":\"ok\",\"attempts\":1,\"elapsed_ms\":1.0}\n"
      "{\"id\":\"b\",\"status\":\"ok\",\"atte");

  BatchOptions options = quiet_options();
  options.journal_path = journal.path;
  const BatchSummary summary = BatchRunner(options).run(entries);
  EXPECT_EQ(summary.resumed, 1);
  EXPECT_EQ(summary.executed, 1);
  ASSERT_EQ(summary.runs.size(), 2u);
  EXPECT_TRUE(summary.runs[0].resumed);
  EXPECT_FALSE(summary.runs[1].resumed);
  EXPECT_TRUE(summary.runs[1].ok);
}

TEST(BatchJournalTest, ResumedFailuresKeepTheirRecordedClassification) {
  ScratchFile journal("batch_test_failed_resume.jsonl");
  journal.write(
      "{\"id\":\"x\",\"status\":\"failed\",\"code\":\"unimplementable\",\"stage\":\"synthesize\","
      "\"message\":\"no trigger\",\"attempts\":1,\"elapsed_ms\":2.0}\n");
  BatchOptions options = quiet_options();
  options.journal_path = journal.path;
  const auto entries = BatchRunner::parse_manifest("x bench:converta\n");
  const BatchSummary summary = BatchRunner(options).run(entries);
  EXPECT_EQ(summary.executed, 0);
  EXPECT_EQ(summary.resumed, 1);
  EXPECT_EQ(summary.failed, 1);
  ASSERT_EQ(summary.runs.size(), 1u);
  EXPECT_FALSE(summary.runs[0].ok);
  EXPECT_EQ(summary.runs[0].code, ErrorCode::kUnimplementable);
  EXPECT_EQ(summary.failures_by_code.at("unimplementable"), 1);
}

// ---------------------------------------------------------------------------
// Kernel-fallback accounting and summary shape
// ---------------------------------------------------------------------------

TEST(BatchRunTest, KernelFallbacksSurfaceInTheSummary) {
  sim::testing::set_kernel_fault_injection(true);
  BatchRunner runner(quiet_options());
  const auto entries = BatchRunner::parse_manifest("k bench:converta runs=2 verify_kernels=1\n");
  const BatchSummary summary = runner.run(entries);
  sim::testing::set_kernel_fault_injection(false);
  ASSERT_EQ(summary.runs.size(), 1u);
  EXPECT_TRUE(summary.runs[0].ok) << summary.runs[0].message;
  EXPECT_EQ(summary.runs[0].kernel_fallbacks, 1);
}

TEST(BatchSummaryTest, JsonCarriesTheSchemaRequiredFields) {
  BatchRunner runner(quiet_options());
  const auto entries = BatchRunner::parse_manifest(
      "ok bench:converta runs=2\nbad bench:no_such_benchmark\n");
  const std::string json = runner.run(entries).to_json();
  for (const char* field :
       {"\"total\":", "\"executed\":", "\"succeeded\":", "\"failed\":", "\"resumed\":",
        "\"retries\":", "\"stopped_early\":", "\"failures_by_code\":", "\"runs\":",
        "\"kernel_fallbacks\":", "\"elapsed_ms\":", "\"attempts\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " missing from " << json;
  }
  EXPECT_NE(json.find("\"code\":\"input_invalid\""), std::string::npos) << json;
}

}  // namespace
}  // namespace nshot
