#include "sg/properties.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sg/bitset.hpp"
#include "util/error.hpp"

namespace nshot::sg {

std::string PropertyReport::summary() const {
  if (violations.empty()) return "ok";
  std::string text = std::to_string(violations.size()) + " violation(s):";
  for (const std::string& v : violations) {
    text += "\n  - ";
    text += v;
  }
  return text;
}

PropertyReport check_consistency(const StateGraph& sg) {
  PropertyReport report;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    for (const Edge& e : sg.out_edges(s)) {
      const std::uint64_t bit = 1ULL << e.label.signal;
      const std::uint64_t expected =
          e.label.rising ? (sg.code(s) | bit) : (sg.code(s) & ~bit);
      const bool pre_ok = sg.value(s, e.label.signal) != e.label.rising;
      if (!pre_ok)
        report.violations.push_back("transition " + sg.label_name(e.label) + " from " +
                                    sg.state_name(s) + " does not change the signal value");
      else if (sg.code(e.target) != expected)
        report.violations.push_back("arc " + sg.state_name(s) + " --" + sg.label_name(e.label) +
                                    "--> " + sg.state_name(e.target) +
                                    " has an inconsistent target code");
    }
  }
  return report;
}

PropertyReport check_reachability(const StateGraph& sg) {
  PropertyReport report;
  if (sg.initial() < 0) {
    report.violations.push_back("no initial state set");
    return report;
  }
  std::vector<bool> seen(static_cast<std::size_t>(sg.num_states()), false);
  std::vector<StateId> stack{sg.initial()};
  seen[static_cast<std::size_t>(sg.initial())] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Edge& e : sg.out_edges(s)) {
      if (!seen[static_cast<std::size_t>(e.target)]) {
        seen[static_cast<std::size_t>(e.target)] = true;
        stack.push_back(e.target);
      }
    }
  }
  for (StateId s = 0; s < sg.num_states(); ++s)
    if (!seen[static_cast<std::size_t>(s)])
      report.violations.push_back("state " + sg.state_name(s) + " is unreachable");
  return report;
}

PropertyReport check_semi_modular(const StateGraph& sg) {
  PropertyReport report;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    const auto labels = sg.enabled_labels(s);
    for (const TransitionLabel& t1 : labels) {
      if (sg.is_input(t1.signal)) continue;  // only non-input transitions are protected
      for (const TransitionLabel& t2 : labels) {
        if (t1 == t2) continue;
        const auto s_via_t1 = sg.successor(s, t1);
        const auto s_via_t2 = sg.successor(s, t2);
        NSHOT_ASSERT(s_via_t1 && s_via_t2, "enabled label without successor");
        const auto s12 = sg.successor(*s_via_t1, t2);
        const auto s21 = sg.successor(*s_via_t2, t1);
        if (!s21)
          report.violations.push_back("non-input transition " + sg.label_name(t1) +
                                      " is disabled by " + sg.label_name(t2) + " in " +
                                      sg.state_name(s));
        else if (!s12 || *s12 != *s21)
          report.violations.push_back("diamond of " + sg.label_name(t1) + " and " +
                                      sg.label_name(t2) + " from " + sg.state_name(s) +
                                      " does not commute");
      }
    }
  }
  return report;
}

namespace {

/// Bit mask of non-input signals excited in s.
std::uint64_t excited_noninput_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const Edge& e : sg.out_edges(s))
    if (!sg.is_input(e.label.signal)) mask |= (1ULL << e.label.signal);
  return mask;
}

}  // namespace

namespace {

/// Visit CSC conflict pairs (first occurrence, conflicting state) in the
/// order check_csc reports them: groups in ascending code order, states
/// ascending within a group.  Shared by the string-building checker and
/// the count-only path the CSC solver hammers, so both stay identical.
template <typename Visitor>
void for_each_csc_conflict(const StateGraph& sg, Visitor&& visit) {
  // Sort (code, state) pairs instead of grouping through std::map: groups
  // come out in ascending code order with states ascending within a group,
  // exactly the map iteration order, so violations list identically.
  std::vector<std::pair<std::uint64_t, StateId>> by_code(
      static_cast<std::size_t>(sg.num_states()));
  for (StateId s = 0; s < sg.num_states(); ++s)
    by_code[static_cast<std::size_t>(s)] = {sg.code(s), s};
  std::sort(by_code.begin(), by_code.end());
  for (std::size_t begin = 0; begin < by_code.size();) {
    std::size_t end = begin;
    while (end < by_code.size() && by_code[end].first == by_code[begin].first) ++end;
    if (end - begin >= 2) {
      const StateId first = by_code[begin].second;
      const std::uint64_t reference = excited_noninput_mask(sg, first);
      for (std::size_t i = begin + 1; i < end; ++i)
        if (excited_noninput_mask(sg, by_code[i].second) != reference)
          visit(first, by_code[i].second);
    }
    begin = end;
  }
}

}  // namespace

PropertyReport check_csc(const StateGraph& sg) {
  PropertyReport report;
  for_each_csc_conflict(sg, [&](StateId first, StateId other) {
    report.violations.push_back("CSC conflict between " + sg.state_name(first) + " and " +
                                sg.state_name(other) +
                                " (equal codes, different excited non-input signals)");
  });
  return report;
}

PropertyReport check_usc(const StateGraph& sg) {
  PropertyReport report;
  // The map is only a first-occurrence lookup; violations list in state
  // order, so a hashed map reports identically.
  std::unordered_map<std::uint64_t, StateId> seen;
  seen.reserve(static_cast<std::size_t>(sg.num_states()));
  for (StateId s = 0; s < sg.num_states(); ++s) {
    const auto [it, inserted] = seen.emplace(sg.code(s), s);
    if (!inserted)
      report.violations.push_back("states " + sg.state_name(it->second) + " and " +
                                  sg.state_name(s) + " share one binary code");
  }
  return report;
}

std::size_t count_csc_conflicts(const StateGraph& sg) {
  std::size_t count = 0;
  for_each_csc_conflict(sg, [&count](StateId, StateId) { ++count; });
  return count;
}

std::vector<StateId> detonant_states(const StateGraph& sg, SignalId a) {
  NSHOT_REQUIRE(!sg.is_input(a), "detonant states are defined for non-input signals");
  // One excitation plane of a replaces the per-state / per-successor
  // out-edge scans: stability and successor excitation become bit probes.
  const StateSet excited = excited_set(sg, a);
  std::vector<StateId> result;
  std::vector<StateId> exciting_successors;
  for (StateId w = 0; w < sg.num_states(); ++w) {
    if (excited.contains(w)) continue;  // a must be stable in w
    exciting_successors.clear();
    for (const Edge& e : sg.out_edges(w))
      if (excited.contains(e.target)) exciting_successors.push_back(e.target);
    std::sort(exciting_successors.begin(), exciting_successors.end());
    exciting_successors.erase(
        std::unique(exciting_successors.begin(), exciting_successors.end()),
        exciting_successors.end());
    if (exciting_successors.size() >= 2) result.push_back(w);
  }
  return result;
}

PropertyReport check_csc_reference(const StateGraph& sg) {
  PropertyReport report;
  std::map<std::uint64_t, std::vector<StateId>> by_code;
  for (StateId s = 0; s < sg.num_states(); ++s) by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code) {
    if (states.size() < 2) continue;
    const std::uint64_t reference = excited_noninput_mask(sg, states[0]);
    for (std::size_t i = 1; i < states.size(); ++i)
      if (excited_noninput_mask(sg, states[i]) != reference)
        report.violations.push_back("CSC conflict between " + sg.state_name(states[0]) + " and " +
                                    sg.state_name(states[i]) +
                                    " (equal codes, different excited non-input signals)");
  }
  return report;
}

PropertyReport check_usc_reference(const StateGraph& sg) {
  PropertyReport report;
  std::map<std::uint64_t, StateId> seen;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    const auto [it, inserted] = seen.emplace(sg.code(s), s);
    if (!inserted)
      report.violations.push_back("states " + sg.state_name(it->second) + " and " +
                                  sg.state_name(s) + " share one binary code");
  }
  return report;
}

std::size_t count_csc_conflicts_reference(const StateGraph& sg) {
  return check_csc_reference(sg).violations.size();
}

std::vector<StateId> detonant_states_reference(const StateGraph& sg, SignalId a) {
  NSHOT_REQUIRE(!sg.is_input(a), "detonant states are defined for non-input signals");
  std::vector<StateId> result;
  for (StateId w = 0; w < sg.num_states(); ++w) {
    if (sg.excited(w, a)) continue;
    std::set<StateId> exciting;
    for (const Edge& e : sg.out_edges(w))
      if (sg.excited(e.target, a)) exciting.insert(e.target);
    if (exciting.size() >= 2) result.push_back(w);
  }
  return result;
}

bool is_distributive(const StateGraph& sg, SignalId a) { return detonant_states(sg, a).empty(); }

bool is_distributive(const StateGraph& sg) {
  for (const SignalId a : sg.noninput_signals())
    if (!is_distributive(sg, a)) return false;
  return true;
}

PropertyReport check_implementability(const StateGraph& sg) {
  const obs::Span span("implementability");
  PropertyReport report;
  using Checker = PropertyReport (*)(const StateGraph&);
  for (const Checker check : {Checker{&check_consistency}, Checker{&check_reachability},
                              Checker{&check_semi_modular}, Checker{&check_csc}}) {
    PropertyReport partial = check(sg);
    report.violations.insert(report.violations.end(), partial.violations.begin(),
                             partial.violations.end());
  }
  return report;
}

}  // namespace nshot::sg
