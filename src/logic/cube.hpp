// Positional-cube representation for two-level logic over up to 64 binary
// input variables and up to 64 outputs.
//
// Each input variable is encoded by two bits: `lo` (the literal admits value
// 0) and `hi` (the literal admits value 1).  A variable with both bits set
// is absent from the product term (don't care); a variable with exactly one
// bit set contributes one literal; a variable with neither bit set makes the
// cube empty (we never construct such cubes through the public API).
//
// The output part is a bit mask: bit `o` set means the product term feeds
// output function `o`.  Single-output logic simply uses output mask 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace nshot::logic {

/// One product term (cube) of a multi-output two-level cover.
class Cube {
 public:
  /// The universal cube over `num_inputs` variables feeding `outputs`.
  static Cube full(int num_inputs, std::uint64_t outputs = 1);

  /// The cube containing exactly the minterm `code` (bit i = value of
  /// variable i), feeding `outputs`.
  static Cube minterm(std::uint64_t code, int num_inputs, std::uint64_t outputs = 1);

  /// Bit mask with one bit per input variable.
  static std::uint64_t input_mask(int num_inputs);

  int num_inputs() const { return num_inputs_; }
  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }
  std::uint64_t outputs() const { return out_; }

  void set_outputs(std::uint64_t out) { out_ = out; }
  void add_output(int o) { out_ |= (1ULL << o); }
  void remove_output(int o) { out_ &= ~(1ULL << o); }
  bool has_output(int o) const { return (out_ >> o) & 1ULL; }

  /// True if the input part admits the minterm `code`.
  bool covers_minterm(std::uint64_t code) const;

  /// True if this cube's input part contains `other`'s input part and this
  /// cube feeds every output `other` feeds.
  bool contains(const Cube& other) const;

  /// True if the input parts of the two cubes intersect (some common
  /// minterm).  Output parts are ignored.
  bool input_intersects(const Cube& other) const;

  /// Smallest cube containing both cubes (input supercube, output union).
  Cube supercube(const Cube& other) const;

  /// Intersection of the input parts; std::nullopt if empty.  The output
  /// part of the result is the union of the two output parts.
  std::optional<Cube> input_intersection(const Cube& other) const;

  /// Variable `v` is a don't care (no literal) in this cube.
  bool var_is_free(int v) const;

  /// Remove the literal on variable `v` (make it don't care).
  void raise_var(int v);

  /// Constrain variable `v` to `value` (adds or tightens the literal).
  void restrict_var(int v, bool value);

  /// Number of input literals in the product term.
  int literal_count() const;

  /// Number of minterms of the input part (2^free_vars); saturates at
  /// 2^63 to avoid overflow for very wide cubes.
  std::uint64_t minterm_count() const;

  /// Lexicographic key for deduplication and deterministic ordering.
  friend bool operator==(const Cube& a, const Cube& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.out_ == b.out_ && a.num_inputs_ == b.num_inputs_;
  }
  friend bool operator<(const Cube& a, const Cube& b);

  /// Render as a PLA-style row, e.g. "01-0 | 101".
  std::string to_string() const;

 private:
  Cube(std::uint64_t lo, std::uint64_t hi, std::uint64_t out, int num_inputs)
      : lo_(lo), hi_(hi), out_(out), num_inputs_(num_inputs) {}

  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
  std::uint64_t out_ = 0;
  int num_inputs_ = 0;
};

}  // namespace nshot::logic
