// Independent correctness oracle for covers produced by the minimizers.
#pragma once

#include <string>

#include "logic/cover.hpp"
#include "logic/spec.hpp"

namespace nshot::logic {

/// Outcome of checking a cover against its specification.
struct VerifyResult {
  bool ok = true;
  std::string message;  // first violation found, empty when ok

  explicit operator bool() const { return ok; }
};

/// Check that every on-minterm of every output is covered and that no cube
/// of the cover intersects the off-set of an output it feeds.
VerifyResult verify_cover(const TwoLevelSpec& spec, const Cover& cover);

/// Check that no cube can be removed without losing an on-minterm.
VerifyResult verify_irredundant(const TwoLevelSpec& spec, const Cover& cover);

}  // namespace nshot::logic
