#include "sim/compiled_netlist.hpp"

#include "util/error.hpp"

namespace nshot::sim {

using netlist::GateId;
using netlist::NetId;

CompiledNetlist::CompiledNetlist(const netlist::Netlist& netlist,
                                 const gatelib::GateLibrary& lib)
    : netlist_(&netlist), lib_(&lib), space_(netlist, lib) {
  const std::size_t num_nets = static_cast<std::size_t>(netlist.num_nets());
  const std::size_t num_gates = static_cast<std::size_t>(netlist.num_gates());

  // CSR fanout: count, prefix-sum, fill.  Iterating gates in id order and
  // writing each net's slots left to right reproduces the per-net
  // gate-id-ordered lists the Simulator used to build with push_back.
  std::vector<std::uint32_t> degree(num_nets, 0);
  std::size_t total_inputs = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    total_inputs += gate.inputs.size();
    for (const NetId in : gate.inputs) ++degree[static_cast<std::size_t>(in)];
  }
  fanout_offset_.assign(num_nets + 1, 0);
  for (std::size_t n = 0; n < num_nets; ++n)
    fanout_offset_[n + 1] = fanout_offset_[n] + degree[n];
  fanout_gate_.resize(fanout_offset_[num_nets]);
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(), fanout_offset_.end() - 1);
  for (GateId g = 0; g < netlist.num_gates(); ++g)
    for (const NetId in : netlist.gate(g).inputs)
      fanout_gate_[cursor[static_cast<std::size_t>(in)]++] = g;

  // Packed gate descriptors over shared flat input arrays.
  gates_.reserve(num_gates);
  input_net_.reserve(total_inputs);
  input_inverted_.reserve(total_inputs);
  driver_.assign(num_nets, -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    CompiledGate packed;
    packed.type = gate.type;
    packed.feedback_cut = gate.feedback_cut;
    packed.first_input = static_cast<std::uint32_t>(input_net_.size());
    packed.num_inputs = static_cast<std::uint32_t>(gate.inputs.size());
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      input_net_.push_back(gate.inputs[i]);
      input_inverted_.push_back(gate.input_inverted(i) ? 1 : 0);
    }
    if (!gate.outputs.empty()) packed.out0 = gate.outputs[0];
    if (gate.outputs.size() > 1) packed.out1 = gate.outputs[1];
    for (const NetId out : gate.outputs) {
      NSHOT_REQUIRE(driver_[static_cast<std::size_t>(out)] < 0,
                    "net " + netlist.net_name(out) + " has multiple drivers");
      driver_[static_cast<std::size_t>(out)] = g;
    }
    gates_.push_back(packed);
  }
}

}  // namespace nshot::sim
