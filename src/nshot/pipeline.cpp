#include "nshot/pipeline.hpp"

#include "stg/g_format.hpp"
#include "stg/reachability.hpp"

namespace nshot {

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  // Apply the shared RunConfig once, up front: every stage below sees the
  // same seed / jobs / grain / reference_kernels regardless of what the
  // caller left in the per-stage sub-structs.
  options_.synthesis.apply_run_config(options_.run);
  options_.conformance.apply_run_config(options_.run);
  options_.stress.apply_run_config(options_.run);
  options_.stress.adversarial.apply_run_config(options_.run);
  if (options_.collect_observability && !obs::session_active())
    session_ = std::make_unique<obs::Session>("nshot", options_.label);
}

Pipeline::~Pipeline() = default;

PipelineRun Pipeline::run(const sg::StateGraph& sg) {
  if (session_ && session_->label().empty()) session_->set_label(sg.name());

  // Aggregate-built because SynthesisResult (Cover, TwoLevelSpec) has no
  // default state — a run either synthesized or threw.
  PipelineRun result{sg.name(), sg, core::synthesize(sg, options_.synthesis),
                     {},    // conformance
                     false,  // conformance_ran
                     {},     // stress
                     false};  // stress_ran

  if (options_.verify_conformance) {
    result.conformance =
        sim::check_conformance(sg, result.synthesis.circuit, options_.conformance);
    result.conformance_ran = true;
  }
  if (options_.stress_test) {
    result.stress =
        faults::run_stress(sg, result.synthesis.circuit, sg.name(), options_.stress);
    result.stress_ran = true;
  }
  return result;
}

PipelineRun Pipeline::run_g(const std::string& g_text) {
  const stg::Stg parsed = stg::parse_g(g_text);
  return run(stg::build_state_graph(parsed));
}

obs::RunReport Pipeline::report() const {
  return session_ ? session_->report() : obs::RunReport{};
}

std::string Pipeline::report_json(const obs::ReportOptions& options) const {
  return session_ ? session_->report_json(options) : obs::report_json(obs::RunReport{}, options);
}

std::string Pipeline::trace_json(const obs::TraceOptions& options) const {
  return session_ ? session_->trace_json(options) : std::string("{\"traceEvents\":[]}\n");
}

}  // namespace nshot
