// Independent correctness oracle for covers produced by the minimizers.
#pragma once

#include <string>

#include "logic/cover.hpp"
#include "logic/spec.hpp"

namespace nshot::logic {

/// Outcome of checking a cover against its specification.
struct VerifyResult {
  bool ok = true;
  std::string message;  // first violation found, empty when ok

  explicit operator bool() const { return ok; }
};

/// Check that every on-minterm of every output is covered and that no cube
/// of the cover intersects the off-set of an output it feeds.  Evaluated
/// bit-sliced (logic/bitslice.hpp): per-cube literal masks word-parallel
/// against the packed minterm codes.
///
/// `jobs` (default 1 = serial) threads the per-output checks: each output's
/// word-parallel sweep is an independent item of an exec::parallel_map and
/// the first failure in OUTPUT order is returned, so the result is
/// byte-identical to the serial early-exit loop at any worker count.
VerifyResult verify_cover(const TwoLevelSpec& spec, const Cover& cover, int jobs = 1);

/// Original minterm-at-a-time implementation of verify_cover, kept
/// compiled in as the byte-equality oracle for the bit-sliced fast path.
VerifyResult verify_cover_reference(const TwoLevelSpec& spec, const Cover& cover);

/// Check that no cube can be removed without losing an on-minterm.
VerifyResult verify_irredundant(const TwoLevelSpec& spec, const Cover& cover);

}  // namespace nshot::logic
