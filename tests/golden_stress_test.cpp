// Golden-file test for the stress-campaign JSON: the full report —
// margins, fault battery, adversarial search — on two fixed benchmarks is
// pinned byte-for-byte.  Any change to seed derivation, merge order,
// battery enumeration or JSON rendering shows up here as a diff, which is
// exactly the surface the parallel engine must not move.
//
// Regenerate after an INTENDED change with:
//   NSHOT_UPDATE_GOLDEN=1 ./golden_stress_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"

namespace nshot {
namespace {

faults::StressOptions golden_options() {
  faults::StressOptions options;
  options.seed = 424242;
  options.margin_runs = 4;
  options.run.max_transitions = 80;
  options.adversarial.restarts = 2;
  options.adversarial.iterations = 25;
  options.adversarial.run.max_transitions = 80;
  return options;
}

std::string render_report(const std::string& name, int jobs) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::SynthesisResult result = core::synthesize(g);
  faults::StressOptions options = golden_options();
  options.jobs = jobs;
  options.adversarial.jobs = jobs;
  return faults::stress_report_json(faults::run_stress(g, result.circuit, name, options));
}

void compare_with_golden(const std::string& name) {
  const std::string path = std::string(NSHOT_GOLDEN_DIR) + "/stress_" + name + ".json";
  const std::string actual = render_report(name, /*jobs=*/1);

  if (std::getenv("NSHOT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream(path) << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with NSHOT_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "stress JSON for " << name
      << " diverged from the golden file; if intended, regenerate with NSHOT_UPDATE_GOLDEN=1";

  // The parallel campaign must hit the same bytes.
  EXPECT_EQ(render_report(name, /*jobs=*/8), actual) << name << " diverges at jobs=8";
}

TEST(GoldenStressTest, Chu133) { compare_with_golden("chu133"); }

TEST(GoldenStressTest, Converta) { compare_with_golden("converta"); }

}  // namespace
}  // namespace nshot
