# Empty compiler generated dependencies file for nshot_sg.
# This may be replaced when dependencies are built.
