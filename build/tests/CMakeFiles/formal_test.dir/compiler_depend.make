# Empty compiler generated dependencies file for formal_test.
# This may be replaced when dependencies are built.
