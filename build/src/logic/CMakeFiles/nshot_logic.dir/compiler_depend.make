# Empty compiler generated dependencies file for nshot_logic.
# This may be replaced when dependencies are built.
