// Minimal streaming JSON writer used by the reporting layers (the fault
// harness emits machine-readable robustness reports).  Append-style: the
// writer tracks nesting and comma placement; values are escaped per RFC
// 8259.  Non-finite doubles are emitted as null (JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace nshot {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (only valid inside an object).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(long number);
  JsonWriter& value(int number) { return value(static_cast<long>(number)); }
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document rendered so far.  Call after closing every scope.
  std::string str() const;

 private:
  void comma();

  std::ostringstream out_;
  std::vector<bool> needs_comma_;  // one entry per open scope
};

/// `text` with JSON string escaping applied, without surrounding quotes.
std::string json_escape(const std::string& text);

}  // namespace nshot
