#include "stg/reachability.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::stg {
namespace {

using Marking = std::vector<std::uint64_t>;  // bit-packed place marking

/// FNV/splitmix-style mix over the packed marking words.
struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t word : m) {
      h = (h ^ word) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Ordered reference map and hashed hot-path map over markings.  Every
/// traversal below is queue-driven (maps are only consulted for
/// membership and id lookup), so the two instantiations are
/// output-identical; `ReachabilityOptions::reference_maps` picks one.
template <typename Value>
using OrderedMarkingMap = std::map<Marking, Value>;
template <typename Value>
using HashedMarkingMap = std::unordered_map<Marking, Value, MarkingHash>;

Marking pack(const std::vector<bool>& marking) {
  Marking packed((marking.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < marking.size(); ++i)
    if (marking[i]) packed[i / 64] |= (1ULL << (i % 64));
  return packed;
}

bool has_token(const Marking& m, PlaceId p) {
  return (m[static_cast<std::size_t>(p) / 64] >> (static_cast<std::size_t>(p) % 64)) & 1ULL;
}

void set_token(Marking& m, PlaceId p, bool value) {
  const std::uint64_t bit = 1ULL << (static_cast<std::size_t>(p) % 64);
  if (value)
    m[static_cast<std::size_t>(p) / 64] |= bit;
  else
    m[static_cast<std::size_t>(p) / 64] &= ~bit;
}

bool transition_enabled(const Stg& stg, const Marking& m, TransitionId t) {
  for (const PlaceId p : stg.preset(t))
    if (!has_token(m, p)) return false;
  return !stg.preset(t).empty();
}

/// Fire `t`; throws if the result is not 1-safe.
Marking fire(const Stg& stg, const Marking& m, TransitionId t) {
  Marking next = m;
  for (const PlaceId p : stg.preset(t)) set_token(next, p, false);
  for (const PlaceId p : stg.postset(t)) {
    NSHOT_REQUIRE(!has_token(next, p), "STG " + stg.name() + " is not 1-safe: firing " +
                                           stg.transition_name(t) + " double-marks place " +
                                           stg.place_name(p));
    set_token(next, p, true);
  }
  return next;
}

/// Unambiguous name for the place-loop firing, callable from the policy
/// classes' own `fire` members without self-lookup.
inline Marking fire_via_loop(const Stg& stg, const Marking& m, TransitionId t) {
  return fire(stg, m, t);
}

/// Place-at-a-time firing — the original implementation, kept as the
/// reference kernel (ReachabilityOptions::reference_maps).
struct LoopFiring {
  explicit LoopFiring(const Stg&) {}
  bool enabled(const Stg& stg, const Marking& m, TransitionId t) const {
    return transition_enabled(stg, m, t);
  }
  Marking fire(const Stg& stg, const Marking& m, TransitionId t) const {
    return fire_via_loop(stg, m, t);
  }
};

/// Mask-compiled firing: per transition, the preset and postset packed as
/// word masks over the marking words, compiled once per traversal.
/// Enabledness is `(m & preset) == preset`; firing is clear-preset /
/// check-postset-overlap / set-postset, one word op per marking word.  On a
/// 1-safety violation (postset overlap after clearing the preset) the
/// kernel re-fires through the place loop so the diagnostic names the same
/// transition and place as the reference.
class MaskFiring {
 public:
  explicit MaskFiring(const Stg& stg) {
    const std::size_t words = (static_cast<std::size_t>(stg.num_places()) + 63) / 64;
    const std::size_t nt = static_cast<std::size_t>(stg.num_transitions());
    preset_.assign(nt, Marking(words, 0));
    postset_.assign(nt, Marking(words, 0));
    has_preset_.assign(nt, false);
    degenerate_.assign(nt, false);
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      for (const PlaceId p : stg.preset(t)) set_token(preset_[ti], p, true);
      for (const PlaceId p : stg.postset(t)) {
        // A duplicate postset arc double-marks its place on every firing;
        // masks cannot express the duplicate, so route such transitions
        // through the place loop for the identical diagnostic.
        if (has_token(postset_[ti], p)) degenerate_[ti] = true;
        set_token(postset_[ti], p, true);
      }
      has_preset_[ti] = !stg.preset(t).empty();
    }
  }

  bool enabled(const Stg&, const Marking& m, TransitionId t) const {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (!has_preset_[ti]) return false;
    const Marking& pre = preset_[ti];
    for (std::size_t w = 0; w < pre.size(); ++w)
      if ((m[w] & pre[w]) != pre[w]) return false;
    return true;
  }

  Marking fire(const Stg& stg, const Marking& m, TransitionId t) const {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (degenerate_[ti]) return fire_via_loop(stg, m, t);
    const Marking& pre = preset_[ti];
    const Marking& post = postset_[ti];
    Marking next = m;
    for (std::size_t w = 0; w < next.size(); ++w) {
      next[w] &= ~pre[w];
      if (next[w] & post[w]) return fire_via_loop(stg, m, t);  // 1-safety diagnostic
      next[w] |= post[w];
    }
    return next;
  }

 private:
  std::vector<Marking> preset_, postset_;
  std::vector<bool> has_preset_, degenerate_;
};

/// Eagerly fire every enabled dummy transition until quiescence.  The
/// closure over all firing orders must converge on a single
/// dummy-quiescent marking (confusion-free dummies); anything else is
/// rejected, as is a cycle of dummies.
template <template <typename> class MapT, typename Firing>
Marking saturate_dummies(const Stg& stg, const Firing& firing, Marking m) {
  if (!stg.has_dummies()) return m;
  MapT<bool> seen;
  std::deque<Marking> queue;
  std::vector<Marking> quiescent;
  seen.emplace(m, true);
  queue.push_back(std::move(m));
  while (!queue.empty()) {
    const Marking current = queue.front();
    queue.pop_front();
    bool any = false;
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!stg.transition(t).is_dummy() || !firing.enabled(stg, current, t)) continue;
      any = true;
      Marking next = firing.fire(stg, current, t);
      if (seen.emplace(next, true).second) queue.push_back(std::move(next));
    }
    if (!any) quiescent.push_back(current);
    NSHOT_REQUIRE_CODE(seen.size() < 10000, ErrorCode::kResourceExhausted,
                       "STG " + stg.name() + " has a diverging dummy-transition closure");
  }
  NSHOT_REQUIRE(quiescent.size() == 1,
                "STG " + stg.name() + " has non-confluent (or cyclic) dummy transitions");
  return quiescent.front();
}

template <template <typename> class MapT, typename Firing>
std::vector<bool> infer_initial_values_impl(const Stg& stg, const ReachabilityOptions& options) {
  const Firing firing(stg);
  const int n = stg.num_signals();
  std::vector<std::optional<bool>> values = stg.declared_initial_values();
  int unresolved = 0;
  for (const auto& v : values)
    if (!v) ++unresolved;

  if (unresolved > 0) {
    // BFS over markings; the first edge labelled with signal x (popping
    // markings in BFS order) is a first firing of x on some path, so its
    // polarity determines the initial value.
    MapT<bool> seen;
    std::deque<Marking> queue;
    const Marking initial = pack(stg.initial_marking());
    seen.emplace(initial, true);
    queue.push_back(initial);
    while (!queue.empty() && unresolved > 0) {
      exec::checkpoint();
      NSHOT_REQUIRE_CODE(seen.size() <= options.max_states, ErrorCode::kResourceExhausted,
                         "STG " + stg.name() + " exceeds the reachability state cap");
      const Marking m = queue.front();
      queue.pop_front();
      for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
        if (!firing.enabled(stg, m, t)) continue;
        const StgTransition& tr = stg.transition(t);
        if (!tr.is_dummy()) {
          auto& value = values[static_cast<std::size_t>(tr.signal)];
          if (!value) {
            value = !tr.rising;  // fires +x first => x starts at 0
            --unresolved;
          }
        }
        Marking next = firing.fire(stg, m, t);
        const auto [it, inserted] = seen.emplace(std::move(next), true);
        if (inserted) queue.push_back(it->first);
      }
    }
  }

  std::vector<bool> result(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NSHOT_REQUIRE(values[static_cast<std::size_t>(i)].has_value(),
                  "signal " + stg.signal(i).name +
                      " never fires; declare its initial value with .init");
    result[static_cast<std::size_t>(i)] = *values[static_cast<std::size_t>(i)];
  }
  return result;
}

template <template <typename> class MapT, typename Firing>
std::vector<TransitionId> dead_transitions_impl(const Stg& stg,
                                                const ReachabilityOptions& options) {
  const Firing firing(stg);
  std::vector<bool> fired(static_cast<std::size_t>(stg.num_transitions()), false);
  MapT<bool> seen;
  std::deque<Marking> queue;
  const Marking initial = pack(stg.initial_marking());
  seen.emplace(initial, true);
  queue.push_back(initial);
  while (!queue.empty()) {
    exec::checkpoint();
    NSHOT_REQUIRE_CODE(seen.size() <= options.max_states, ErrorCode::kResourceExhausted,
                       "STG " + stg.name() + " exceeds the reachability state cap");
    const Marking m = queue.front();
    queue.pop_front();
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!firing.enabled(stg, m, t)) continue;
      fired[static_cast<std::size_t>(t)] = true;
      Marking next = firing.fire(stg, m, t);
      const auto [it, inserted] = seen.emplace(std::move(next), true);
      if (inserted) queue.push_back(it->first);
    }
  }
  std::vector<TransitionId> dead;
  for (TransitionId t = 0; t < stg.num_transitions(); ++t)
    if (!fired[static_cast<std::size_t>(t)]) dead.push_back(t);
  return dead;
}

// Shared diagnostics of the state-graph build.  Both the serial BFS and
// the sharded level-synchronous BFS raise through these helpers, so the
// thrown errors are byte-identical (including the reported throw site)
// whichever path found the violation first.
void require_state_cap(const Stg& stg, std::size_t states, std::size_t max_states) {
  NSHOT_REQUIRE_CODE(states <= max_states, ErrorCode::kResourceExhausted,
                     "STG " + stg.name() + " exceeds the reachability state cap");
}

void require_consistent_firing(const Stg& stg, std::uint64_t code, TransitionId t) {
  const StgTransition& tr = stg.transition(t);
  NSHOT_REQUIRE(((code & (1ULL << tr.signal)) != 0) != tr.rising,
                "STG " + stg.name() + " is inconsistent: " + stg.transition_name(t) +
                    " fires when " + stg.signal(tr.signal).name + " is already " +
                    (tr.rising ? "1" : "0"));
}

void require_single_code(const Stg& stg, bool same_code) {
  NSHOT_REQUIRE(same_code, "STG " + stg.name() +
                               " is inconsistent: one marking is reached with two different codes");
}

void require_deterministic(const Stg& stg, bool same_successor, TransitionId t) {
  NSHOT_REQUIRE(same_successor, "STG " + stg.name() + " maps label " + stg.transition_name(t) +
                                    " to two successors of one state (not SG-deterministic)");
}

template <template <typename> class MapT, typename Firing>
sg::StateGraph build_state_graph_impl(const Stg& stg, const ReachabilityOptions& options) {
  const obs::Span reach_span("reachability");
  const Firing firing(stg);
  const std::vector<bool> initial_values = infer_initial_values_impl<MapT, Firing>(stg, options);

  sg::StateGraph graph(stg.name());
  for (int i = 0; i < stg.num_signals(); ++i) {
    const SignalKind kind = stg.signal(i).kind;
    graph.add_signal(stg.signal(i).name, kind == SignalKind::kInput
                                             ? sg::SignalKind::kInput
                                             : sg::SignalKind::kNonInput);
  }

  std::uint64_t initial_code = 0;
  for (std::size_t i = 0; i < initial_values.size(); ++i)
    if (initial_values[i]) initial_code |= (1ULL << i);

  MapT<sg::StateId> ids;
  std::deque<Marking> queue;
  const Marking initial = saturate_dummies<MapT>(stg, firing, pack(stg.initial_marking()));
  ids.emplace(initial, graph.add_state(initial_code));
  graph.set_initial(0);
  queue.push_back(initial);

  while (!queue.empty()) {
    exec::checkpoint();
    const Marking m = queue.front();
    queue.pop_front();
    const sg::StateId from = ids.at(m);
    const std::uint64_t code = graph.code(from);

    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!firing.enabled(stg, m, t)) continue;
      const StgTransition& tr = stg.transition(t);
      if (tr.is_dummy()) continue;  // eliminated by eager saturation below
      const std::uint64_t bit = 1ULL << tr.signal;
      require_consistent_firing(stg, code, t);
      const std::uint64_t next_code = tr.rising ? (code | bit) : (code & ~bit);

      Marking next = saturate_dummies<MapT>(stg, firing, firing.fire(stg, m, t));
      const auto [it, inserted] = ids.emplace(std::move(next), -1);
      if (inserted) {
        require_state_cap(stg, ids.size(), options.max_states);
        it->second = graph.add_state(next_code);
        queue.push_back(it->first);
      } else {
        require_single_code(stg, graph.code(it->second) == next_code);
      }

      const sg::TransitionLabel label{tr.signal, tr.rising};
      const auto existing = graph.successor(from, label);
      if (existing) {
        require_deterministic(stg, *existing == it->second, t);
      } else {
        graph.add_edge(from, label, it->second);
      }
    }
  }
  obs::count(obs::Counter::kStatesVisited, graph.num_states());
  return graph;
}

// ---------------------------------------------------------------------------
// Sharded level-synchronous BFS (ReachabilityOptions::jobs > 1).
//
// The serial hot path above interleaves expansion with insertion, which a
// thread pool cannot reproduce without locking the visited map.  The
// sharded build instead processes the BFS one level at a time:
//
//   Phase A  every frontier marking expands in parallel (enabledness,
//            consistency check, mask firing, dummy saturation, marking
//            hash); a diagnostic raised mid-expansion is captured as an
//            exception_ptr at its exact (parent, transition) position.
//   Phase B  candidates are numbered parent-major / transition-minor —
//            exactly the serial visit order — and bucketed by
//            hash & (shards-1); each shard dedups its own bucket in seq
//            order against a private open-addressing table whose markings
//            live in append-only arena pages (stable pointers, no
//            rehash-time copies of marking words).  Each candidate's
//            table entry lands at its own resolution[seq] slot, so the
//            merge is by-index and worker-order independent.
//   Phase C  a serial replay walks the candidates in seq order, assigns
//            StateIds to first occurrences (BFS discovery order), checks
//            the state cap / code consistency / determinism requirements
//            and adds edges — then rethrows any Phase A error at the
//            position the serial loop would have thrown it.
//
// Duplicate markings always hash to the same shard, so cross-shard id
// collisions are impossible, and the replay order makes the resulting
// graph — and any thrown diagnostic — byte-identical to the serial hot
// path at every jobs and shard count.
// ---------------------------------------------------------------------------

constexpr sg::StateId kUnassignedState = -1;
constexpr std::uint32_t kEmptySlot = 0xffffffffu;

/// Append-only page store for fixed-width packed markings.  Pages never
/// move once allocated, so `at()` pointers stay valid for the lifetime of
/// the arena — the frontier and the shard tables both point straight into
/// the pages instead of copying markings around.
class MarkingArena {
 public:
  explicit MarkingArena(std::size_t words) : words_(words) {}

  std::uint32_t append(const Marking& m) {
    const std::uint32_t idx = static_cast<std::uint32_t>(size_++);
    if (idx % kMarkingsPerPage == 0)
      pages_.push_back(std::make_unique<std::uint64_t[]>(
          std::max<std::size_t>(kMarkingsPerPage * words_, 1)));
    std::uint64_t* slot = pages_.back().get() + (idx % kMarkingsPerPage) * words_;
    std::copy(m.begin(), m.end(), slot);
    return idx;
  }

  const std::uint64_t* at(std::uint32_t idx) const {
    return pages_[idx / kMarkingsPerPage].get() + (idx % kMarkingsPerPage) * words_;
  }

 private:
  static constexpr std::size_t kMarkingsPerPage = 4096;

  std::size_t words_;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<std::uint64_t[]>> pages_;
};

struct ShardEntry {
  std::uint64_t hash = 0;
  std::uint32_t arena_idx = 0;
  sg::StateId id = kUnassignedState;
};

/// One shard of the visited set: an open-addressing hash table whose
/// entries reference markings stored in the shard's arena.  Entry indices
/// are append-only and survive rehashing, so Phase B can hand them to the
/// serial replay as stable handles.
class VisitedShard {
 public:
  explicit VisitedShard(std::size_t words) : arena_(words), words_(words) {}

  /// Entry index for marking `m` (precomputed hash `h`), inserting a new
  /// unassigned entry — and appending `m` to the arena — when absent.
  std::uint32_t find_or_insert(std::uint64_t h, const Marking& m) {
    if (entries_.size() * 10 >= slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != kEmptySlot) {
      const ShardEntry& e = entries_[slots_[i]];
      if (e.hash == h && std::equal(m.begin(), m.end(), arena_.at(e.arena_idx)))
        return slots_[i];
      i = (i + 1) & mask;
    }
    const std::uint32_t entry = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back({h, arena_.append(m), kUnassignedState});
    slots_[i] = entry;
    return entry;
  }

  ShardEntry& entry(std::uint32_t idx) { return entries_[idx]; }
  const std::uint64_t* marking(std::uint32_t entry_idx) const {
    return arena_.at(entries_[entry_idx].arena_idx);
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 1024 : slots_.size() * 2;
    slots_.assign(cap, kEmptySlot);
    const std::size_t mask = cap - 1;
    for (std::uint32_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = static_cast<std::size_t>(entries_[e].hash) & mask;
      while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = e;
    }
  }

  MarkingArena arena_;
  std::size_t words_;
  std::vector<std::uint32_t> slots_;
  std::vector<ShardEntry> entries_;
};

struct FrontierEntry {
  const std::uint64_t* words = nullptr;  // into a shard arena page
  sg::StateId id = kUnassignedState;
};

struct Candidate {
  Marking next;
  std::uint64_t next_code = 0;
  std::uint64_t hash = 0;
  TransitionId t = -1;
};

struct ParentExpansion {
  std::vector<Candidate> candidates;  // transitions in t order up to `error`
  std::exception_ptr error;           // diagnostic raised mid-expansion, if any
};

struct Resolution {
  std::uint32_t shard = 0;
  std::uint32_t entry = 0;
};

sg::StateGraph build_state_graph_sharded(const Stg& stg, const ReachabilityOptions& options,
                                         int workers) {
  const obs::Span reach_span("reachability");
  const MaskFiring firing(stg);
  const std::vector<bool> initial_values =
      infer_initial_values_impl<HashedMarkingMap, MaskFiring>(stg, options);

  sg::StateGraph graph(stg.name());
  for (int i = 0; i < stg.num_signals(); ++i) {
    const SignalKind kind = stg.signal(i).kind;
    graph.add_signal(stg.signal(i).name, kind == SignalKind::kInput
                                             ? sg::SignalKind::kInput
                                             : sg::SignalKind::kNonInput);
  }

  std::uint64_t initial_code = 0;
  for (std::size_t i = 0; i < initial_values.size(); ++i)
    if (initial_values[i]) initial_code |= (1ULL << i);

  const std::size_t words = (static_cast<std::size_t>(stg.num_places()) + 63) / 64;
  // The shard count only partitions the internal tables — the output is
  // invariant to it — so any power of two near the worker count works.
  const std::size_t num_shards =
      std::bit_ceil(static_cast<std::size_t>(std::clamp(workers, 1, 64)));
  const std::uint64_t shard_mask = num_shards - 1;
  std::vector<VisitedShard> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) shards.emplace_back(words);

  const Marking initial =
      saturate_dummies<HashedMarkingMap>(stg, firing, pack(stg.initial_marking()));
  const std::uint64_t initial_hash = MarkingHash{}(initial);
  const std::uint32_t initial_shard = static_cast<std::uint32_t>(initial_hash & shard_mask);
  const std::uint32_t initial_entry = shards[initial_shard].find_or_insert(initial_hash, initial);
  shards[initial_shard].entry(initial_entry).id = graph.add_state(initial_code);
  graph.set_initial(0);

  std::vector<FrontierEntry> frontier{{shards[initial_shard].marking(initial_entry), 0}};
  std::vector<FrontierEntry> next_frontier;
  std::vector<Resolution> resolution;
  std::vector<std::vector<std::pair<std::uint32_t, const Candidate*>>> by_shard(num_shards);

  while (!frontier.empty()) {
    // Phase A: expand the whole frontier in parallel, merged by index.
    std::vector<ParentExpansion> expansions = exec::parallel_map<ParentExpansion>(
        static_cast<int>(frontier.size()),
        [&](int pi) {
          ParentExpansion out;
          const FrontierEntry& fe = frontier[static_cast<std::size_t>(pi)];
          const Marking m(fe.words, fe.words + words);
          const std::uint64_t code = graph.code(fe.id);
          try {
            for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
              if (!firing.enabled(stg, m, t)) continue;
              const StgTransition& tr = stg.transition(t);
              if (tr.is_dummy()) continue;  // eliminated by eager saturation
              const std::uint64_t bit = 1ULL << tr.signal;
              require_consistent_firing(stg, code, t);
              const std::uint64_t next_code = tr.rising ? (code | bit) : (code & ~bit);
              Marking next =
                  saturate_dummies<HashedMarkingMap>(stg, firing, firing.fire(stg, m, t));
              const std::uint64_t h = MarkingHash{}(next);
              out.candidates.push_back({std::move(next), next_code, h, t});
            }
          } catch (...) {
            // Replayed at the exact serial throw position in Phase C.
            out.error = std::current_exception();
          }
          return out;
        },
        workers, /*grain=*/0);

    // Number the candidates in serial visit order and bucket by shard.
    std::size_t total = 0;
    for (const ParentExpansion& e : expansions) total += e.candidates.size();
    resolution.resize(total);
    for (auto& bucket : by_shard) bucket.clear();
    {
      std::uint32_t seq = 0;
      for (const ParentExpansion& e : expansions)
        for (const Candidate& c : e.candidates)
          by_shard[static_cast<std::size_t>(c.hash & shard_mask)].emplace_back(seq++, &c);
    }

    // Phase B: per-shard dedup; resolution slots are disjoint by seq.
    exec::parallel_for(
        static_cast<int>(num_shards),
        [&](int si) {
          VisitedShard& shard = shards[static_cast<std::size_t>(si)];
          for (const auto& [seq, cand] : by_shard[static_cast<std::size_t>(si)])
            resolution[seq] = {static_cast<std::uint32_t>(si),
                               shard.find_or_insert(cand->hash, cand->next)};
        },
        workers, /*grain=*/1);

    // Phase C: serial replay in seq order — ids, edges and diagnostics in
    // exactly the order the serial BFS produces them.
    next_frontier.clear();
    std::uint32_t seq = 0;
    for (std::size_t pi = 0; pi < frontier.size(); ++pi) {
      exec::checkpoint();
      const sg::StateId from = frontier[pi].id;
      const ParentExpansion& expansion = expansions[pi];
      for (const Candidate& c : expansion.candidates) {
        const Resolution r = resolution[seq++];
        ShardEntry& entry = shards[r.shard].entry(r.entry);
        if (entry.id == kUnassignedState) {
          require_state_cap(stg, static_cast<std::size_t>(graph.num_states()) + 1,
                            options.max_states);
          entry.id = graph.add_state(c.next_code);
          next_frontier.push_back({shards[r.shard].marking(r.entry), entry.id});
        } else {
          require_single_code(stg, graph.code(entry.id) == c.next_code);
        }
        const StgTransition& tr = stg.transition(c.t);
        const sg::TransitionLabel label{tr.signal, tr.rising};
        const auto existing = graph.successor(from, label);
        if (existing) {
          require_deterministic(stg, *existing == entry.id, c.t);
        } else {
          graph.add_edge(from, label, entry.id);
        }
      }
      if (expansion.error) std::rethrow_exception(expansion.error);
    }
    frontier.swap(next_frontier);
  }
  obs::count(obs::Counter::kStatesVisited, graph.num_states());
  return graph;
}

}  // namespace

std::vector<bool> infer_initial_values(const Stg& stg, const ReachabilityOptions& options) {
  return options.reference_maps
             ? infer_initial_values_impl<OrderedMarkingMap, LoopFiring>(stg, options)
             : infer_initial_values_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

std::vector<TransitionId> dead_transitions(const Stg& stg, const ReachabilityOptions& options) {
  return options.reference_maps
             ? dead_transitions_impl<OrderedMarkingMap, LoopFiring>(stg, options)
             : dead_transitions_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

sg::StateGraph build_state_graph(const Stg& stg, const ReachabilityOptions& options) {
  if (options.reference_maps)
    return build_state_graph_impl<OrderedMarkingMap, LoopFiring>(stg, options);
  const int workers = options.jobs == 1 ? 1 : exec::resolve_jobs(options.jobs);
  if (workers > 1) return build_state_graph_sharded(stg, options, workers);
  return build_state_graph_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

}  // namespace nshot::stg
