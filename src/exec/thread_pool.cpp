#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/cancel.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::exec {

namespace {

std::atomic<int> g_default_jobs{0};  // 0 = unset, fall back to env / 1

int env_jobs() {
  if (const char* env = std::getenv("NSHOT_JOBS")) {
    const int value = std::atoi(env);
    if (value >= 1) return value;
  }
  return 1;
}

}  // namespace

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int default_jobs() {
  const int set = g_default_jobs.load(std::memory_order_relaxed);
  return set >= 1 ? set : env_jobs();
}

// Let RunReport record the effective jobs value without obs linking
// against exec.  Evaluated once before main(); any TU that uses the pool
// pulls this object file in, so the hook is set whenever it matters.
[[maybe_unused]] const bool g_obs_jobs_hook =
    (obs::detail::g_default_jobs_provider = &default_jobs, true);

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs >= 1 ? jobs : 0, std::memory_order_relaxed);
}

int resolve_jobs(int jobs) { return jobs >= 1 ? jobs : default_jobs(); }

namespace {

std::atomic<double> g_admission_us{-1.0};  // < 0 = unset, fall back to env / default

double env_admission_us() {
  if (const char* env = std::getenv("NSHOT_PARALLEL_MIN_US")) {
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end != env && value >= 0) return value;
  }
  return 4000.0;
}

}  // namespace

double parallel_admission_us() {
  const double set = g_admission_us.load(std::memory_order_relaxed);
  return set >= 0 ? set : env_admission_us();
}

void set_parallel_admission_us(double us) {
  g_admission_us.store(us >= 0 ? us : -1.0, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  // One deque per worker; workers pop their own front (LIFO locality) and
  // steal from a victim's back (FIFO — oldest task first keeps the steal
  // cheap and fair).  Each deque has its own mutex; the contention unit is
  // one push/pop, never a task body.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next_queue{0};
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  bool stop = false;

  explicit Impl(int threads) {
    const int n = std::max(threads, 1);
    queues.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      workers.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex);
      stop = true;
    }
    sleep_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  /// Pop from own queue, then steal round the ring.  Returns false when
  /// every deque is empty at the moment of inspection.
  bool try_pop(std::size_t self, std::function<void()>& task) {
    const std::size_t n = queues.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (self + k) % n;
      WorkerQueue& q = *queues[victim];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.tasks.empty()) continue;
      if (victim == self) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      } else {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      }
      return true;
    }
    return false;
  }

  void worker_loop(std::size_t self) {
    while (true) {
      std::function<void()> task;
      if (try_pop(self, task)) {
        task();
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex);
      if (stop) return;
      // Re-check with the sleep lock held: a submitter publishes the task
      // before notifying under this same lock, so a wakeup cannot be lost.
      if (try_pop(self, task)) {
        lock.unlock();
        task();
        continue;
      }
      sleep_cv.wait(lock);
      if (stop) return;
    }
  }

  void submit(std::function<void()> task) {
    const std::size_t target =
        next_queue.fetch_add(1, std::memory_order_relaxed) % queues.size();
    {
      WorkerQueue& q = *queues[target];
      std::lock_guard<std::mutex> lock(q.mutex);
      q.tasks.push_back(std::move(task));
    }
    {
      std::lock_guard<std::mutex> lock(sleep_mutex);
    }
    sleep_cv.notify_one();
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl(threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

int ThreadPool::num_threads() const { return static_cast<int>(impl_->workers.size()); }

void ThreadPool::submit(std::function<void()> task) {
  // Capture the submitting thread's active span so spans opened inside the
  // task attach to it — parallel per-item spans nest under the caller's
  // pass span exactly as a serial run would nest them.  When observability
  // is disabled the context is 0 and the scope is a no-op.  The submitting
  // thread's CancelToken rides along the same way, so a deadline installed
  // on the caller covers every worker that picks up its chunks.
  const std::int64_t context = obs::detail::current_context();
  std::shared_ptr<void> cancel_state = detail::capture_current();
  if (context == 0 && !cancel_state) {
    impl_->submit(std::move(task));
    return;
  }
  impl_->submit([context, cancel_state = std::move(cancel_state), task = std::move(task)] {
    obs::detail::ContextScope scope(context);
    detail::PropagateScope cancel_scope(cancel_state);
    task();
  });
}

ThreadPool& ThreadPool::shared() {
  // Big enough for the determinism tests' --jobs 8 even on small machines;
  // the caller thread always participates on top of these workers.
  static ThreadPool pool(std::max(hardware_jobs() - 1, 8));
  return pool;
}

namespace {

/// Shared state of one parallel_for_chunks: a self-scheduling bag of
/// chunk indices.  Runner tasks and the calling thread all drain it;
/// runners that the pool only schedules after the loop finished find the
/// bag empty and exit without touching the (already destroyed) caller
/// frame — everything they need is owned by this block via shared_ptr.
struct ForLoop {
  std::function<void(int, int)> chunk;
  int n = 0;
  int grain = 1;
  int num_chunks = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<int, std::exception_ptr>> errors;  // guarded by mutex

  void record(int begin, std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex);
    errors.emplace_back(begin, std::move(error));
  }

  /// Execute one chunk, converting a fired CancelToken into a recorded
  /// deadline-exceeded error instead of running the body — this is how a
  /// deadline drains a half-finished bag promptly: remaining chunks are
  /// claimed, skipped and counted without touching the work.
  void run_chunk(int c) {
    const int begin = c * grain;
    const int end = std::min(begin + grain, n);
    if (cancel_requested()) {
      record(begin, std::make_exception_ptr(Error(ErrorCode::kDeadlineExceeded,
                                                  "work cancelled: " +
                                                      current_token().reason())));
    } else {
      try {
        chunk(begin, end);
      } catch (...) {
        record(begin, std::current_exception());
      }
    }
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
      std::lock_guard<std::mutex> lock(mutex);
      cv.notify_all();
    }
  }

  void run() {
    while (true) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      run_chunk(c);
    }
  }

  /// Rethrow the failure a serial sweep would have hit first.
  void rethrow_lowest() {
    if (errors.empty()) return;
    auto first = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
};

/// `grain` <= 0 aims for a few chunks per worker — enough slack for the
/// work-stealing to balance an uneven bag without paying per-item
/// scheduling.
int resolve_grain(int grain, int n, int workers) {
  if (grain >= 1) return grain;
  return std::max(1, n / (workers * 4));
}

}  // namespace

int batch_grain(int n, int jobs, int lanes) {
  if (n <= 1) return 1;
  // Chunks beyond the physical thread count cannot add throughput — they
  // only fragment the per-chunk state (a jobs=8 request on a 1-core host
  // must still run one chunk with full 64-lane groups).
  const int workers = std::max(1, std::min({resolve_jobs(jobs), hardware_jobs(), n}));
  int grain = (n + workers - 1) / workers;
  // Keep lane groups whole: only the final chunk of the sweep may run a
  // partial group.  Rounding up can leave trailing workers idle, but a
  // full 64-lane settle on fewer workers beats fragmented groups on all
  // of them.
  if (lanes > 1) grain = (grain + lanes - 1) / lanes * lanes;
  return grain;
}

void parallel_for_chunks(int n, int grain, const std::function<void(int, int)>& chunk,
                         int jobs) {
  if (n <= 0) return;
  checkpoint();  // a fired deadline stops a sweep before it starts
  const int workers = std::min(resolve_jobs(jobs), n);
  if (workers <= 1 || n == 1) {
    chunk(0, n);  // one chunk: maximal scratch reuse, immediate propagation
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->chunk = chunk;
  loop->n = n;
  loop->grain = resolve_grain(grain, n, workers);
  loop->num_chunks = (n + loop->grain - 1) / loop->grain;
  if (loop->num_chunks == 1) {
    chunk(0, n);
    return;
  }

  // Cost-model admission: the caller runs chunk 0 inline and times it.
  // When the projected cost of the REMAINING chunks is below the admission
  // threshold, scheduling them is all overhead (worker wakeups, steal
  // traffic, cache ping-pong) — finish the bag serially on this thread
  // instead.  The by-index result contract makes the two schedules
  // byte-identical, so this is purely a latency decision.
  loop->next.store(1, std::memory_order_relaxed);
  const auto admit_start = std::chrono::steady_clock::now();
  loop->run_chunk(0);
  const double first_chunk_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - admit_start)
          .count();
  const double threshold_us = parallel_admission_us();
  if (threshold_us > 0 &&
      first_chunk_us * static_cast<double>(loop->num_chunks - 1) < threshold_us) {
    loop->run();  // remaining chunks, serial
    loop->rethrow_lowest();
    return;
  }

  ThreadPool& pool = ThreadPool::shared();
  const int runners = std::min(workers - 1, loop->num_chunks - 2);
  for (int r = 0; r < runners; ++r) pool.submit([loop] { loop->run(); });
  loop->run();  // the caller is always a participant

  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->cv.wait(lock,
                [&] { return loop->done.load(std::memory_order_acquire) == loop->num_chunks; });
  loop->rethrow_lowest();
}

void parallel_for(int n, const std::function<void(int)>& body, int jobs, int grain) {
  if (n <= 0) return;
  const int workers = std::min(resolve_jobs(jobs), n);
  if (workers <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) {
      checkpoint();  // serial path: a fired deadline throws out of the loop
      body(i);
    }
    return;
  }

  // Per-item try/catch inside the chunk keeps the parallel_for contract:
  // every item runs even when an earlier item of the same chunk threw, and
  // the rethrown exception is the lowest ITEM index, not chunk index.
  // Cancellation is the exception to "every item runs": a fired token
  // abandons the rest of the chunk with one recorded deadline error.
  std::mutex mutex;
  std::vector<std::pair<int, std::exception_ptr>> errors;
  parallel_for_chunks(
      n, grain,
      [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
          if (cancel_requested()) {
            std::lock_guard<std::mutex> lock(mutex);
            errors.emplace_back(
                i, std::make_exception_ptr(Error(ErrorCode::kDeadlineExceeded,
                                                 "work cancelled: " +
                                                     current_token().reason())));
            return;
          }
          try {
            body(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            errors.emplace_back(i, std::current_exception());
          }
        }
      },
      jobs);
  if (!errors.empty()) {
    auto first = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace nshot::exec
