.model dangle
.inputs a
.outputs c
.graph
a+ c+
c+ a-
a- c-
.marking { <a-,c-> }
.end
