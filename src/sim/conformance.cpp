#include "sim/conformance.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sim/trial_batch.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

using netlist::NetId;

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kHazard: return "hazard";
    case ViolationKind::kEnvironment: return "environment";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kEventBudget: return "event-budget";
  }
  return "unknown";
}

std::string ConformanceReport::summary() const {
  std::ostringstream out;
  out << runs << " run(s): " << external_transitions << " conformant external transitions, "
      << internal_toggles << " internal toggles, " << deadlocks << " deadlock(s), "
      << violations.size() << " violation(s)";
  if (budget_exhausted > 0) out << ", " << budget_exhausted << " budget-exhausted run(s)";
  for (std::size_t i = 0; i < std::min<std::size_t>(violations.size(), 5); ++i)
    out << "\n  [seed " << violations[i].seed << " t=" << violations[i].time << "] "
        << violation_kind_name(violations[i].kind) << ": " << violations[i].description;
  return out.str();
}

std::vector<std::pair<NetId, bool>> initial_net_values(const sg::StateGraph& spec,
                                                       const netlist::Netlist& circuit) {
  std::vector<std::pair<NetId, bool>> values;
  for (int x = 0; x < spec.num_signals(); ++x) {
    const bool v = spec.value(spec.initial(), x);
    if (const auto q = circuit.find_net(spec.signal(x).name)) values.emplace_back(*q, v);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b"))
      values.emplace_back(*qb, !v);
  }
  if (const auto c0 = circuit.find_net("const0")) values.emplace_back(*c0, false);
  if (const auto c1 = circuit.find_net("const1")) values.emplace_back(*c1, true);
  return values;
}

SpecBinding::SpecBinding(const sg::StateGraph& spec, const netlist::Netlist& circuit) {
  signal_net.assign(static_cast<std::size_t>(spec.num_signals()), -1);
  net_signal.assign(static_cast<std::size_t>(circuit.num_nets()), -1);
  for (int x = 0; x < spec.num_signals(); ++x) {
    const auto net = circuit.find_net(spec.signal(x).name);
    NSHOT_REQUIRE(net.has_value(), "circuit has no net for signal " + spec.signal(x).name);
    signal_net[static_cast<std::size_t>(x)] = *net;
    net_signal[static_cast<std::size_t>(*net)] = x;
    observable.push_back(*net);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b")) observable.push_back(*qb);
  }
  initial_values = initial_net_values(spec, circuit);

  num_signals = spec.num_signals();
  successor.assign(static_cast<std::size_t>(spec.num_states()) *
                       static_cast<std::size_t>(num_signals) * 2,
                   sg::StateId{-1});
  for (sg::StateId s = 0; s < spec.num_states(); ++s)
    for (const sg::Edge& e : spec.out_edges(s))
      successor[(static_cast<std::size_t>(s) * static_cast<std::size_t>(num_signals) +
                 static_cast<std::size_t>(e.label.signal)) * 2 + (e.label.rising ? 1 : 0)] =
          e.target;
}

namespace {

/// One closed-loop run; appends to the report.  `sim` must be freshly
/// reset (or constructed) under config.sim.  When `recorder` is given,
/// every net change (and the initial values) are captured for VCD export.
void run_once(const sg::StateGraph& spec, const SpecBinding& binding, Simulator& sim,
              const ClosedLoopConfig& config, ConformanceReport& report,
              VcdRecorder* recorder = nullptr) {
  const std::uint64_t seed = config.sim.seed;
  Rng rng(env_stream(config.env_seed != 0 ? config.env_seed : seed));
  const std::vector<NetId>& signal_net = binding.signal_net;
  const std::vector<int>& net_signal = binding.net_signal;

  sg::StateId state = spec.initial();
  long run_transitions = 0;
  bool failed = false;

  NetObserver vcd_observer = recorder ? recorder->observer() : NetObserver{};
  sim.set_observer([&, vcd_observer](NetId net, bool value, double time) {
    if (vcd_observer) vcd_observer(net, value, time);
    if (config.observer) config.observer(net, value, time);
    const int x = net_signal[static_cast<std::size_t>(net)];
    if (x < 0 || failed) return;  // internal net, or already failing
    const sg::StateId next = binding.next_state(state, x, value);
    if (next >= 0) {
      state = next;
      ++run_transitions;
      return;
    }
    failed = true;
    const sg::TransitionLabel label{x, value};
    report.violations.push_back(ConformanceViolation{
        seed, time, spec.is_input(x) ? ViolationKind::kEnvironment : ViolationKind::kHazard,
        "unexpected transition " + spec.label_name(label) + " in state " +
            spec.state_name(state) + (spec.is_input(x) ? " (environment bug)" : " (hazard)")});
  });

  sim.initialize(binding.initial_values);
  if (recorder) recorder->capture_initial(sim);
  if (config.on_initialized) config.on_initialized(sim);
  for (const auto& [net, value] : config.forces) sim.force_net(net, value);

  struct InputDecision {
    sg::TransitionLabel label;
    double time;
  };
  std::optional<InputDecision> decision;
  std::size_t next_injection = 0;
  constexpr double kNever = std::numeric_limits<double>::infinity();
  std::vector<sg::TransitionLabel> choices;  // reused across decisions

  while (!failed && run_transitions < config.max_transitions &&
         sim.now() < config.time_limit && !sim.budget_exhausted()) {
    // (Re)validate or make the environment's next input decision.  A
    // stuck-at input net cannot be toggled by the environment, so labels
    // on forced nets are not offered.
    if (decision &&
        binding.next_state(state, decision->label.signal, decision->label.rising) < 0)
      decision.reset();
    if (!decision) {
      choices.clear();
      for (const sg::Edge& e : spec.out_edges(state))
        if (spec.is_input(e.label.signal) &&
            !sim.is_forced(signal_net[static_cast<std::size_t>(e.label.signal)]))
          choices.push_back(e.label);
      if (!choices.empty()) {
        const sg::TransitionLabel pick = choices[rng.next_below(choices.size())];
        decision = InputDecision{
            pick, sim.now() + rng.next_double(config.input_delay_min, config.input_delay_max)};
      }
    }

    const double event_time = sim.has_pending_events() ? sim.next_event_time() : kNever;
    const double decision_time = decision ? decision->time : kNever;
    const double injection_time = next_injection < config.injections.size()
                                      ? std::max(config.injections[next_injection].time, sim.now())
                                      : kNever;

    // A due injection preempts both circuit events and the environment:
    // the fault is already present at that instant.
    if (next_injection < config.injections.size() && injection_time <= event_time &&
        injection_time <= decision_time) {
      const TimedInjection& inj = config.injections[next_injection++];
      sim.advance_time(injection_time);
      if (inj.release)
        sim.release_net(inj.net);
      else
        sim.force_net(inj.net, inj.value);
      continue;
    }

    // Fundamental mode: drain all circuit activity before the input fires.
    if (sim.has_pending_events() &&
        (!decision || config.fundamental_mode || event_time <= decision->time)) {
      sim.step();
      continue;
    }
    if (decision) {
      if (config.fundamental_mode && decision->time < sim.now())
        decision->time = sim.now();  // the circuit outlasted the planned instant
      sim.set_input(signal_net[static_cast<std::size_t>(decision->label.signal)],
                    decision->label.rising, decision->time);
      // Commit the input immediately (it is the earliest pending event) so
      // the spec state advances before the next decision is made.
      sim.step();
      decision.reset();
      continue;
    }

    // No circuit events, no injection, and no possible input: quiescent or
    // deadlocked.  Reaching here with no decision means every enabled input
    // label sits on a forced net, so an enabled input is a starved
    // environment, not a clean endpoint.
    bool output_pending = false;
    bool input_starved = false;
    for (const sg::Edge& e : spec.out_edges(state)) {
      if (!spec.is_input(e.label.signal))
        output_pending = true;
      else if (sim.is_forced(signal_net[static_cast<std::size_t>(e.label.signal)]))
        input_starved = true;
    }
    if (output_pending || input_starved) {
      ++report.deadlocks;
      report.violations.push_back(ConformanceViolation{
          seed, sim.now(), ViolationKind::kDeadlock,
          output_pending
              ? "circuit quiescent but spec state " + spec.state_name(state) +
                    " still enables a non-input transition"
              : "circuit quiescent and every transition spec state " + spec.state_name(state) +
                    " enables is an input pinned by a fault"});
    }
    break;
  }

  if (sim.budget_exhausted()) {
    ++report.budget_exhausted;
    report.violations.push_back(ConformanceViolation{
        seed, sim.now(), ViolationKind::kEventBudget,
        "event budget exhausted after " + std::to_string(sim.events_processed()) +
            " events (runaway oscillation under the current delays/faults?)"});
  }

  report.external_transitions += run_transitions;
  report.internal_toggles += sim.total_toggles_excluding(binding.observable);
  report.absorbed_pulses += sim.mhs_absorbed_pulses();
  report.simulated_time += sim.now();
}

/// First differing fingerprint field between two single-trial reports, or
/// nullptr when they agree.  Everything a trial computes funnels into
/// these fields, so agreement here is agreement on the trial.
const char* trial_mismatch_field(const ConformanceReport& got, const ConformanceReport& want) {
  if (got.external_transitions != want.external_transitions) return "external_transitions";
  if (got.internal_toggles != want.internal_toggles) return "internal_toggles";
  if (got.absorbed_pulses != want.absorbed_pulses) return "absorbed_pulses";
  if (got.simulated_time != want.simulated_time) return "simulated_time";
  if (got.deadlocks != want.deadlocks) return "deadlocks";
  if (got.budget_exhausted != want.budget_exhausted) return "budget_exhausted";
  if (got.violations.size() != want.violations.size()) return "violations";
  return nullptr;
}

std::atomic<int> g_inject_kernel_fault{-1};  // -1 = env not read yet

}  // namespace

namespace testing {

void set_kernel_fault_injection(bool enabled) {
  g_inject_kernel_fault.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool kernel_fault_injection() {
  int v = g_inject_kernel_fault.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("NSHOT_INJECT_KERNEL_FAULT");
    v = (env && *env && *env != '0') ? 1 : 0;
    g_inject_kernel_fault.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

}  // namespace testing

ConformanceReport run_closed_loop(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                  const ClosedLoopConfig& config, VcdRecorder* recorder) {
  const CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const SpecBinding binding(spec, circuit);
  return run_closed_loop(spec, binding, compiled, config, recorder);
}

ConformanceReport run_closed_loop(const sg::StateGraph& spec, const SpecBinding& binding,
                                  const CompiledNetlist& compiled,
                                  const ClosedLoopConfig& config, VcdRecorder* recorder,
                                  Simulator* reuse) {
  ConformanceReport report;
  report.runs = 1;
  if (reuse) {
    reuse->reset(config.sim);
    run_once(spec, binding, *reuse, config, report, recorder);
  } else {
    Simulator sim(compiled, config.sim);
    run_once(spec, binding, sim, config, report, recorder);
  }
  return report;
}

/// Fold one trial's report into the sweep total.  Trials are merged in run
/// order, so a parallel sweep reproduces the serial report byte for byte.
static void merge_run(ConformanceReport& total, const ConformanceReport& run) {
  total.external_transitions += run.external_transitions;
  total.internal_toggles += run.internal_toggles;
  total.absorbed_pulses += run.absorbed_pulses;
  total.simulated_time += run.simulated_time;
  total.deadlocks += run.deadlocks;
  total.budget_exhausted += run.budget_exhausted;
  total.violations.insert(total.violations.end(), run.violations.begin(),
                          run.violations.end());
}

ConformanceReport check_conformance(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                    const ConformanceOptions& options) {
  const CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  return check_conformance(spec, compiled, options);
}

ConformanceReport check_conformance(const sg::StateGraph& spec, const CompiledNetlist& compiled,
                                    const ConformanceOptions& options) {
  // Every trial is a pure function of run_seed(options.seed, r), so the
  // sweep is an order-independent bag of work; only the merge is ordered.
  // Chunking lets each scheduled task run many sub-millisecond trials
  // through one resettable Simulator.
  const obs::Span conf_span("conformance");
  const SpecBinding binding(spec, compiled.netlist());
  auto trial_config = [&](int r) {
    ClosedLoopConfig config;
    config.sim.seed = run_seed(options.seed, r);
    config.sim.randomize_delays = true;
    config.sim.max_events = options.max_events;
    config.max_transitions = options.max_transitions;
    config.input_delay_min = options.input_delay_min;
    config.input_delay_max = options.input_delay_max;
    config.time_limit = options.time_limit;
    config.fundamental_mode = options.fundamental_mode;
    return config;
  };
  std::vector<ConformanceReport> trials(static_cast<std::size_t>(std::max(options.runs, 0)));
  // The default engine groups trials 64 to a plane settle, so the grain
  // must be a whole number of lane groups — otherwise every chunk runs
  // partially-filled groups (the reference engines are per-trial and take
  // the plain grain).
  const bool lane_batched = !options.reference_kernels && !options.reference_driver;
  exec::parallel_for_chunks(
      options.runs,
      options.grain > 0 ? options.grain
                        : exec::batch_grain(options.runs, options.jobs,
                                            lane_batched ? TrialBatch::kLanes : 1),
      [&](int begin, int end) {
        // Chunk boundaries are a scheduling detail (they move with jobs /
        // grain), so the span is task-scoped: dropped from deterministic
        // exports, kept in wall-clock traces.
        const obs::Span chunk_span = obs::Span::task("trials", begin);
        obs::count(obs::Counter::kTrialsRun, end - begin);
        const bool verify = options.verify_kernels && !options.reference_kernels;
        if (!options.reference_kernels && !options.reference_driver) {
          // Default engine: the chunk's trials run through the batched
          // calendar-queue engine, 64 lanes per group.
          TrialBatch batch(compiled);
          std::vector<ClosedLoopConfig> configs;
          for (int r = begin; r < end; r += TrialBatch::kLanes) {
            const int m = std::min(TrialBatch::kLanes, end - r);
            configs.clear();
            for (int i = 0; i < m; ++i) configs.push_back(trial_config(r + i));
            batch.run(spec, binding, configs.data(), m, &trials[static_cast<std::size_t>(r)]);
          }
          if (!verify) return;
        }
        std::optional<Simulator> sim;  // one per chunk, reset per trial
        for (int r = begin; r < end; ++r) {
          const ClosedLoopConfig config = trial_config(r);
          ConformanceReport trial;
          trial.runs = 1;
          if (options.reference_kernels) {
            // Old cost model: compile + construct per trial.
            Simulator fresh(compiled.netlist(), compiled.lib(), config.sim);
            run_once(spec, binding, fresh, config, trial);
          } else if (options.reference_driver) {
            // Frozen PR-3 driver: reused compiled simulator, heap queue.
            if (!sim)
              sim.emplace(compiled, config.sim);
            else
              sim->reset(config.sim);
            run_once(spec, binding, *sim, config, trial);
          } else {
            // Batched trial computed above; verify it against the oracle.
            trial = std::move(trials[static_cast<std::size_t>(r)]);
          }
          if (verify) {
            if (testing::kernel_fault_injection()) ++trial.internal_toggles;
            ConformanceReport oracle;
            oracle.runs = 1;
            Simulator reference(compiled.netlist(), compiled.lib(), config.sim);
            run_once(spec, binding, reference, config, oracle);
            if (const char* field = trial_mismatch_field(trial, oracle)) {
              obs::count(obs::Counter::kKernelMismatches);
              throw Error(ErrorCode::kKernelMismatch,
                          "compiled simulator diverged from reference on trial " +
                              std::to_string(r) + " (seed " + std::to_string(config.sim.seed) +
                              "): field " + field);
            }
          }
          trials[static_cast<std::size_t>(r)] = std::move(trial);
        }
      },
      options.jobs);
  ConformanceReport report;
  report.runs = options.runs;
  for (const ConformanceReport& trial : trials) merge_run(report, trial);
  return report;
}

TracedRun record_vcd_trace(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                           std::uint64_t seed, int max_transitions) {
  VcdRecorder recorder(circuit);
  ClosedLoopConfig config;
  config.sim.seed = seed;
  config.sim.randomize_delays = true;
  config.max_transitions = max_transitions;
  TracedRun traced = {};
  traced.report = run_closed_loop(spec, circuit, config, &recorder);
  traced.vcd = recorder.write();
  return traced;
}

}  // namespace nshot::sim
