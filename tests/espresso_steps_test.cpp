// White-box tests of the ESPRESSO loop's individual steps (EXPAND,
// IRREDUNDANT, REDUCE) and structured function families with known
// minimum-cover sizes.
#include <gtest/gtest.h>

#include <bit>

#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "logic/verify.hpp"

namespace nshot::logic {
namespace {

TwoLevelSpec completely_specified(int n, auto&& f) {
  TwoLevelSpec spec(n, 1);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) f(m) ? spec.add_on(0, m) : spec.add_off(0, m);
  spec.normalize();
  return spec;
}

// ----------------------------------------------------------- the steps --

TEST(EspressoStepsTest, ExpandRaisesMintermsToPrimes) {
  // f = x0 over 3 vars, given as 4 minterm cubes: EXPAND must collapse
  // them into the single literal cube.
  const TwoLevelSpec spec =
      completely_specified(3, [](std::uint64_t m) { return (m & 1) != 0; });
  Cover cover(3, 1);
  for (const std::uint64_t m : spec.on(0)) cover.add(Cube::minterm(m, 3, 1));
  espresso_expand(cover, spec, /*share_outputs=*/true);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 1);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
}

TEST(EspressoStepsTest, ExpandNeverCoversOffMinterms) {
  const TwoLevelSpec spec = completely_specified(
      4, [](std::uint64_t m) { return std::popcount(m) % 2 == 1; });  // parity
  Cover cover(4, 1);
  for (const std::uint64_t m : spec.on(0)) cover.add(Cube::minterm(m, 4, 1));
  espresso_expand(cover, spec, true);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  // Parity has no don't cares and no adjacent on-minterms: nothing raises.
  EXPECT_EQ(cover.size(), 8u);
  for (const Cube& c : cover) EXPECT_EQ(c.literal_count(), 4);
}

TEST(EspressoStepsTest, IrredundantDropsCoveredCubes) {
  const TwoLevelSpec spec =
      completely_specified(2, [](std::uint64_t m) { return m != 0; });  // x0 + x1
  Cover cover(2, 1);
  Cube a = Cube::full(2, 1);
  a.restrict_var(0, true);  // x0
  Cube b = Cube::full(2, 1);
  b.restrict_var(1, true);  // x1
  cover.add(a);
  cover.add(b);
  cover.add(Cube::minterm(0b11, 2, 1));  // redundant corner
  espresso_irredundant(cover, spec);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(verify_irredundant(spec, cover).ok);
}

TEST(EspressoStepsTest, ReduceShrinksToEssentialMinterms) {
  // Two overlapping cubes; REDUCE shrinks each to the part only it covers
  // (plus nothing else), keeping total coverage.
  const TwoLevelSpec spec =
      completely_specified(2, [](std::uint64_t m) { return m != 0; });
  Cover cover(2, 1);
  Cube a = Cube::full(2, 1);
  a.restrict_var(0, true);
  Cube b = Cube::full(2, 1);
  b.restrict_var(1, true);
  cover.add(a);
  cover.add(b);
  espresso_reduce(cover, spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  // The overlap minterm 11 stays covered by exactly one of the two.
  EXPECT_EQ(cover.covering_cubes(0b11, 0).size(), 1u);
}

TEST(EspressoStepsTest, ReduceRedistributesAndExpandRecovers) {
  // REDUCE processes the widest cube first and may shed its shared
  // minterms onto narrower cubes (that is its job — escaping local
  // minima); the following EXPAND + IRREDUNDANT must recover the optimum.
  const TwoLevelSpec spec =
      completely_specified(2, [](std::uint64_t m) { return (m & 1) != 0; });
  Cover cover(2, 1);
  Cube a = Cube::full(2, 1);
  a.restrict_var(0, true);  // x0: covers everything needed
  cover.add(a);
  cover.add(Cube::minterm(0b01, 2, 1));  // subsumed
  espresso_reduce(cover, spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);  // coverage never lost
  espresso_expand(cover, spec, true);
  espresso_irredundant(cover, spec);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 1);
}

// -------------------------------------------- known-optimal families --

TEST(EspressoStepsTest, ParityNeedsExponentialCubes) {
  // k-input parity has minimum SOP size 2^(k-1): a hard lower bound any
  // correct minimizer must land on exactly (no don't cares to exploit).
  for (int k = 2; k <= 5; ++k) {
    const TwoLevelSpec spec = completely_specified(
        k, [](std::uint64_t m) { return std::popcount(m) % 2 == 1; });
    const Cover heuristic = espresso(spec);
    EXPECT_TRUE(verify_cover(spec, heuristic).ok);
    EXPECT_EQ(heuristic.size(), 1u << (k - 1)) << "parity-" << k;
    const Cover exact = exact_minimize(spec);
    EXPECT_EQ(exact.size(), 1u << (k - 1)) << "parity-" << k;
  }
}

TEST(EspressoStepsTest, MajorityOfFiveIsTenCubes) {
  // maj5's minimum SOP is C(5,3) = 10 three-literal products.
  const TwoLevelSpec spec = completely_specified(
      5, [](std::uint64_t m) { return std::popcount(m) >= 3; });
  const Cover cover = exact_minimize(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  EXPECT_EQ(cover.size(), 10u);
  for (const Cube& c : cover) EXPECT_EQ(c.literal_count(), 3);
}

TEST(EspressoStepsTest, AndOrLaddersCollapse) {
  // f = x0 x1 + x2 x3 + x4 x5: exactly 3 cubes, 2 literals each.
  const TwoLevelSpec spec = completely_specified(6, [](std::uint64_t m) {
    return ((m & 0b000011) == 0b000011) || ((m & 0b001100) == 0b001100) ||
           ((m & 0b110000) == 0b110000);
  });
  for (const bool exact : {false, true}) {
    const Cover cover = exact ? exact_minimize(spec) : espresso(spec);
    EXPECT_TRUE(verify_cover(spec, cover).ok);
    EXPECT_EQ(cover.size(), 3u);
    EXPECT_EQ(cover.literal_count(), 6);
  }
}

TEST(EspressoStepsTest, TwoBitAdderSumAndCarry) {
  // Full adder (a, b, cin) -> (sum, carry): sum is 3-parity (4 cubes),
  // carry is maj3 (3 cubes); sharing cannot merge them (disjoint shapes).
  TwoLevelSpec spec(3, 2);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const int ones = std::popcount(m);
    (ones % 2 == 1) ? spec.add_on(0, m) : spec.add_off(0, m);
    (ones >= 2) ? spec.add_on(1, m) : spec.add_off(1, m);
  }
  spec.normalize();
  // Without sharing, the per-function optima are classic: 4 + 3 cubes.
  EspressoOptions options;
  options.share_outputs = false;
  const Cover per_output = espresso(spec, options);
  EXPECT_TRUE(verify_cover(spec, per_output).ok);
  EXPECT_EQ(per_output.cube_count_for_output(0), 4);
  EXPECT_EQ(per_output.cube_count_for_output(1), 3);
  // With sharing the carry may reuse sum products; total gates never grow.
  const Cover shared = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, shared).ok);
  EXPECT_LE(shared.size(), per_output.size());
}

TEST(EspressoStepsTest, DontCareHalfSpaceCollapsesToConstantish) {
  // On-set: one minterm; everything else don't care: a single full cube.
  TwoLevelSpec spec(5, 1);
  spec.add_on(0, 7);
  spec.normalize();
  const Cover cover = espresso(spec);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 0);
}

}  // namespace
}  // namespace nshot::logic
