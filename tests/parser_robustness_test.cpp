// Parser-hardening tests: every malformed input under tests/corpus/ must
// be rejected with a clean Error(kInputInvalid) — never a crash, hang, or
// misclassified internal error — and content defects must name the
// offending line.  Also covers the raw-text validation (NUL bytes,
// malformed UTF-8, overlong lines) shared by all the text parsers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "logic/pla.hpp"
#include "stg/g_format.hpp"
#include "stg/sg_format.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace nshot {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void parse_by_extension(const fs::path& path, const std::string& text) {
  const std::string ext = path.extension().string();
  if (ext == ".g") {
    (void)stg::parse_g(text);
  } else if (ext == ".sg") {
    (void)stg::parse_sg(text);
  } else if (ext == ".pla") {
    (void)logic::parse_pla(text);
  } else {
    FAIL() << "corpus file with unknown extension: " << path;
  }
}

// ---------------------------------------------------------------------------
// Corpus sweep
// ---------------------------------------------------------------------------

TEST(ParserCorpusTest, EveryCorpusFileIsRejectedAsInputInvalid) {
  const fs::path corpus(NSHOT_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;

  // Defects that are whole-file properties, not tied to one line.
  const std::set<std::string> no_line_context = {"g_dangling_transition.g", "g_no_transitions.g"};

  int checked = 0;
  for (const auto& dirent : fs::directory_iterator(corpus)) {
    const fs::path path = dirent.path();
    if (path.filename() == "README.md") continue;
    ++checked;
    const std::string text = slurp(path);
    try {
      parse_by_extension(path, text);
      ADD_FAILURE() << path.filename() << " parsed without error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInputInvalid)
          << path.filename() << ": " << e.what();
      if (no_line_context.count(path.filename().string()) == 0) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
            << path.filename() << ": " << e.what();
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << path.filename() << " escaped as non-nshot exception: " << e.what();
    }
  }
  // The corpus must actually be populated (catches a bad NSHOT_CORPUS_DIR).
  EXPECT_GE(checked, 12);
}

// ---------------------------------------------------------------------------
// Raw-text validation specifics
// ---------------------------------------------------------------------------

TEST(CheckParserTextTest, AcceptsCleanAsciiAndUtf8) {
  check_parser_text(".model ok\n.inputs a\n", "test");
  check_parser_text("# caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80\n", "test");  // 2/3/4-byte
  check_parser_text("", "test");
}

TEST(CheckParserTextTest, NamesLineAndColumnOfANulByte) {
  try {
    check_parser_text(std::string("ok\nbad\0line\n", 12), "fmt");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("fmt: line 2, column 4"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("NUL"), std::string::npos);
  }
}

TEST(CheckParserTextTest, RejectsMalformedUtf8) {
  // Bare continuation byte.
  EXPECT_THROW(check_parser_text("\x80", "t"), Error);
  // Lead byte with a non-continuation follower.
  EXPECT_THROW(check_parser_text("\xc3(", "t"), Error);
  // Truncated sequence at end of input.
  EXPECT_THROW(check_parser_text("ok \xe2\x82", "t"), Error);
  // 0xF8..0xFF are never valid leads.
  EXPECT_THROW(check_parser_text("\xfe\xff", "t"), Error);
}

TEST(CheckParserTextTest, RejectsOverlongLinesButNotLongFiles) {
  const std::string long_line(kMaxParserLine + 1, 'x');
  try {
    check_parser_text("first\n" + long_line, "fmt");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("line 2 exceeds"), std::string::npos) << e.what();
  }
  // Many short lines totalling far more than kMaxParserLine are fine.
  std::string many_lines;
  for (int i = 0; i < 3000; ++i) many_lines += std::string(60, 'y') + "\n";
  check_parser_text(many_lines, "fmt");
}

// ---------------------------------------------------------------------------
// Targeted parser diagnostics (message quality, not just classification)
// ---------------------------------------------------------------------------

TEST(ParserDiagnosticsTest, DuplicateSignalNamesTheLine) {
  try {
    (void)stg::parse_g(".model t\n.inputs a\n.outputs a\n.end\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate signal"), std::string::npos);
  }
}

TEST(ParserDiagnosticsTest, DanglingTransitionNamesTheTransition) {
  // b+ fires into the cycle but nothing ever re-enables it.
  try {
    (void)stg::parse_g(
        ".model t\n.inputs a b\n.graph\na+ a-\na- a+\nb+ a+\n.marking { <a-,a+> }\n.end\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("b+"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
  }
}

TEST(ParserDiagnosticsTest, PlaGarbageCountsAreInputInvalidNotInternal) {
  // std::stoi would have thrown std::invalid_argument here and been
  // misclassified as an internal error by batch drivers.
  try {
    (void)logic::parse_pla(".i nonsense\n.o 1\n.e\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << e.what();
  }
}

TEST(ParserDiagnosticsTest, PlaRowWidthMismatchNamesTheRowLine) {
  try {
    (void)logic::parse_pla(".i 2\n.o 1\n01 1\n0-1 1\n.e\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace nshot
