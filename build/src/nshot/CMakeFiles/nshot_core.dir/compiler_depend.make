# Empty compiler generated dependencies file for nshot_core.
# This may be replaced when dependencies are built.
