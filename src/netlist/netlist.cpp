#include "netlist/netlist.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace nshot::netlist {

using gatelib::GateLibrary;
using gatelib::GateType;

NetId Netlist::add_net(const std::string& name) {
  NSHOT_REQUIRE(!find_net(name).has_value(), "duplicate net name " + name);
  net_names_.push_back(name);
  return static_cast<NetId>(net_names_.size() - 1);
}

GateId Netlist::add_gate(Gate gate) {
  NSHOT_REQUIRE(!gate.outputs.empty(), "gate " + gate.name + " has no output");
  NSHOT_REQUIRE(gate.inverted.empty() || gate.inverted.size() == gate.inputs.size(),
                "gate " + gate.name + " inversion flags do not match inputs");
  for (const NetId n : gate.inputs)
    NSHOT_REQUIRE(n >= 0 && n < num_nets(), "gate " + gate.name + " reads an unknown net");
  for (const NetId n : gate.outputs)
    NSHOT_REQUIRE(n >= 0 && n < num_nets(), "gate " + gate.name + " drives an unknown net");
  gates_.push_back(std::move(gate));
  return static_cast<GateId>(gates_.size() - 1);
}

void Netlist::add_primary_input(NetId net) {
  NSHOT_REQUIRE(net >= 0 && net < num_nets(), "primary input net unknown");
  primary_inputs_.push_back(net);
}

void Netlist::add_primary_output(NetId net) {
  NSHOT_REQUIRE(net >= 0 && net < num_nets(), "primary output net unknown");
  primary_outputs_.push_back(net);
}

NetId Netlist::build_tree(GateType type, const std::vector<NetId>& inputs,
                          const std::vector<bool>& inverted, const std::string& name_prefix,
                          bool force_gate) {
  NSHOT_REQUIRE(type == GateType::kAnd || type == GateType::kOr,
                "build_tree supports AND/OR only");
  NSHOT_REQUIRE(!inputs.empty(), "build_tree needs at least one input");
  NSHOT_REQUIRE(inverted.empty() || inverted.size() == inputs.size(),
                "build_tree inversion flags do not match inputs");

  const int max_fanin = GateLibrary::standard().max_fanin();
  const bool any_inverted =
      std::any_of(inverted.begin(), inverted.end(), [](bool b) { return b; });

  if (inputs.size() == 1 && !any_inverted && !force_gate) return inputs[0];

  if (static_cast<int>(inputs.size()) <= max_fanin) {
    const NetId out = add_net(name_prefix + "_out");
    add_gate(Gate{.type = inputs.size() == 1 && any_inverted ? GateType::kInv : type,
                  .name = name_prefix,
                  .inputs = inputs,
                  .inverted = inputs.size() == 1 && any_inverted ? std::vector<bool>{}
                                                                 : inverted,
                  .outputs = {out}});
    return out;
  }

  // Split into max-fanin chunks, then combine the chunk outputs.
  std::vector<NetId> level_nets;
  int chunk_index = 0;
  for (std::size_t begin = 0; begin < inputs.size(); begin += static_cast<std::size_t>(max_fanin)) {
    const std::size_t end = std::min(inputs.size(), begin + static_cast<std::size_t>(max_fanin));
    const std::vector<NetId> chunk(inputs.begin() + static_cast<std::ptrdiff_t>(begin),
                                   inputs.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<bool> chunk_inv;
    if (!inverted.empty())
      chunk_inv.assign(inverted.begin() + static_cast<std::ptrdiff_t>(begin),
                       inverted.begin() + static_cast<std::ptrdiff_t>(end));
    level_nets.push_back(build_tree(type, chunk, chunk_inv,
                                    name_prefix + "_c" + std::to_string(chunk_index++),
                                    /*force_gate=*/true));
  }
  return build_tree(type, level_nets, {}, name_prefix + "_m", /*force_gate=*/true);
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  for (std::size_t i = 0; i < net_names_.size(); ++i)
    if (net_names_[i] == name) return static_cast<NetId>(i);
  return std::nullopt;
}

std::optional<GateId> Netlist::driver(NetId net) const {
  for (std::size_t g = 0; g < gates_.size(); ++g)
    for (const NetId out : gates_[g].outputs)
      if (out == net) return static_cast<GateId>(g);
  return std::nullopt;
}

void Netlist::check_well_formed() const {
  std::vector<int> driver_count(static_cast<std::size_t>(num_nets()), 0);
  for (const Gate& g : gates_)
    for (const NetId out : g.outputs) ++driver_count[static_cast<std::size_t>(out)];
  for (const NetId pi : primary_inputs_) ++driver_count[static_cast<std::size_t>(pi)];
  for (NetId n = 0; n < num_nets(); ++n)
    NSHOT_REQUIRE(driver_count[static_cast<std::size_t>(n)] <= 1,
                  "net " + net_name(n) + " has multiple drivers");
  for (const Gate& g : gates_)
    for (const NetId in : g.inputs)
      NSHOT_REQUIRE(driver_count[static_cast<std::size_t>(in)] == 1,
                    "gate " + g.name + " reads undriven net " + net_name(in));
}

NetlistStats Netlist::stats(const GateLibrary& lib) const {
  NetlistStats stats;
  for (const Gate& g : gates_) {
    const bool explicit_delay_cell =
        g.type == GateType::kDelayLine || g.type == GateType::kInertialDelay;
    stats.area += explicit_delay_cell ? lib.area(g.type, 1)
                                      : lib.area(g.type, static_cast<int>(g.inputs.size()));
    ++stats.gate_count;
    if (g.type == GateType::kAnd || g.type == GateType::kOr)
      stats.literal_count += static_cast<int>(g.inputs.size());
  }

  // Longest-path analysis on the combinational DAG obtained by cutting
  // storage-element and feedback outputs.
  std::vector<double> arrival(static_cast<std::size_t>(num_nets()), -1.0);
  for (const NetId pi : primary_inputs_) arrival[static_cast<std::size_t>(pi)] = 0.0;
  for (const Gate& g : gates_)
    if (is_storage(g.type) || g.feedback_cut)
      for (const NetId out : g.outputs) arrival[static_cast<std::size_t>(out)] = 0.0;

  std::vector<const Gate*> pending;
  for (const Gate& g : gates_)
    if (!is_storage(g.type) && !g.feedback_cut) pending.push_back(&g);

  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<const Gate*> still_pending;
    for (const Gate* g : pending) {
      double worst = 0.0;
      bool ready = true;
      for (const NetId in : g->inputs) {
        const double a = arrival[static_cast<std::size_t>(in)];
        if (a < 0.0) {
          ready = false;
          break;
        }
        worst = std::max(worst, a);
      }
      if (!ready) {
        still_pending.push_back(g);
        continue;
      }
      const bool explicit_delay_cell =
          g->type == GateType::kDelayLine || g->type == GateType::kInertialDelay;
      const double out_time =
          worst + (explicit_delay_cell ? g->explicit_delay : lib.report_delay(g->type));
      for (const NetId out : g->outputs)
        arrival[static_cast<std::size_t>(out)] = std::max(arrival[static_cast<std::size_t>(out)],
                                                          out_time);
      progress = true;
    }
    pending = std::move(still_pending);
  }
  NSHOT_REQUIRE(pending.empty(),
                "netlist " + name_ + " contains an unmarked combinational cycle");

  double delay = 0.0;
  for (const Gate& g : gates_) {
    if (!is_storage(g.type) && !g.feedback_cut) continue;
    double input_arrival = 0.0;
    for (const NetId in : g.inputs)
      input_arrival = std::max(input_arrival, std::max(0.0, arrival[static_cast<std::size_t>(in)]));
    const bool explicit_cell =
        g.type == GateType::kDelayLine || g.type == GateType::kInertialDelay;
    delay = std::max(delay,
                     input_arrival + (explicit_cell ? g.explicit_delay : lib.report_delay(g.type)));
  }
  for (const NetId po : primary_outputs_)
    delay = std::max(delay, std::max(0.0, arrival[static_cast<std::size_t>(po)]));
  stats.delay = delay;
  return stats;
}

std::string Netlist::to_string() const {
  std::string text = "netlist " + name_ + "\n";
  text += "  inputs:";
  for (const NetId n : primary_inputs_) text += " " + net_name(n);
  text += "\n  outputs:";
  for (const NetId n : primary_outputs_) text += " " + net_name(n);
  text += "\n";
  for (const Gate& g : gates_) {
    text += "  " + std::string(gatelib::gate_type_name(g.type)) + " " + g.name + ": ";
    for (std::size_t o = 0; o < g.outputs.size(); ++o)
      text += (o ? ", " : "") + net_name(g.outputs[o]);
    text += " <= ";
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      text += (i ? ", " : "");
      if (g.input_inverted(i)) text += "!";
      text += net_name(g.inputs[i]);
    }
    if (g.type == GateType::kDelayLine || g.type == GateType::kInertialDelay)
      text += " (delay " + std::to_string(g.explicit_delay) + ")";
    text += "\n";
  }
  return text;
}

}  // namespace nshot::netlist
