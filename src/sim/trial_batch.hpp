// Batched Monte-Carlo trial execution over the compiled netlist.
//
// A conformance/stress campaign runs hundreds of closed-loop trials that
// differ only in their RNG streams.  This engine splits each trial into
// the part that is delay-independent — the combinational settle from the
// initial values — and the part that is not (the event-driven walk), and
// batches the former across up to 64 trials by packing each net's value
// into one bit per trial of a uint64_t plane (the sg::StateSet trick
// applied to the simulator):
//
//  * BatchPlanes evaluates the whole combinational netlist word-parallel,
//    64 trials per gate evaluation, including the storage-excitation
//    planes (set/reset rails, latch/C-element targets) that decide which
//    storage elements arm at t=0.
//  * TrialBatch groups up to 64 trial configs, settles them through one
//    BatchPlanes pass, and then peels lanes off to the scalar path: under
//    randomized per-trial delays the very first delay draw desynchronizes
//    event order, so a lane stays in lockstep only while its entire
//    config matches its group leader's (then it shares the leader's
//    execution outright — one scalar run serves every such lane).
//  * TrialRunner is that scalar path, rebuilt for throughput: an adaptive-
//    queue simulator (sim/event_queue.hpp — heap at small populations,
//    calendar past the measured crossover) reused across trials, the
//    cached plane settle instead of a per-trial relaxation, and a commit
//    log drained after each step instead of a std::function observer per
//    commit.
//
// The contract is byte-identity: for every config, TrialRunner::run
// produces the same ConformanceReport — violation strings, simulated-time
// doubles, RNG draw sequence — and the same VCD witness bytes as
// run_closed_loop on the reference per-trial simulator.  The differential
// battery in tests/sim_batch_equivalence_test.cpp enforces this over
// fuzzed circuits; check_conformance enforces it per-trial under
// --verify-kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/conformance.hpp"
#include "sim/event_sim.hpp"

namespace nshot::sim {

/// Word-parallel net-value planes: bit L of plane[net] is net's value in
/// trial lane L.  Mirrors Simulator::initialize's dependency-order settle
/// (same REQUIRE diagnostics) across all lanes at once.
class BatchPlanes {
 public:
  /// Per-lane overrides of the shared fixed values: lane L additionally
  /// applies overrides[L].  Pass nullptr when every lane starts alike.
  using LaneOverrides = std::vector<std::vector<std::pair<netlist::NetId, bool>>>;

  /// Settle `lanes` trials (1..64) from `fixed` (+ per-lane overrides)
  /// through the combinational gates of `compiled`.
  void settle(const CompiledNetlist& compiled,
              const std::vector<std::pair<netlist::NetId, bool>>& fixed,
              const LaneOverrides* overrides, int lanes);

  /// Lane L's settled value of every net, one byte per net — the exact
  /// vector Simulator::initialize would have computed for that lane.
  void extract(int lane, std::vector<std::uint8_t>& out) const;

  std::uint64_t plane(netlist::NetId net) const {
    return value_[static_cast<std::size_t>(net)];
  }

  /// Word-parallel storage-element target in the settled state (one bit
  /// per lane): what eval_combinational reports for a latch/C-element, or
  /// the cut-input value for a feedback cut.  The storage element arms at
  /// t=0 in every lane whose target bit differs from its output bit.
  std::uint64_t storage_target(netlist::GateId g) const;

  /// Word-parallel MHS effective excitation (set side when `set` is true:
  /// in0 & in2, else in1 & in3) in the settled state.
  std::uint64_t mhs_excitation(netlist::GateId g, bool set) const;

 private:
  std::uint64_t input_plane(const CompiledGate& gate, std::size_t i) const;

  const CompiledNetlist* compiled_ = nullptr;
  std::uint64_t lane_mask_ = 0;
  std::vector<std::uint64_t> value_;       // per net
  std::vector<std::uint8_t> is_source_;    // per net
  std::vector<std::uint8_t> net_known_;    // settle scratch
  std::vector<netlist::GateId> pending_;   // settle scratch
  std::vector<netlist::GateId> still_;     // settle scratch
};

/// The batched engine's scalar lane: one closed-loop trial, byte-identical
/// to run_closed_loop(spec, binding, compiled, config) on the reference
/// driver, but executed on the adaptive-queue simulator with the cached
/// plane settle and the commit-log driver.  Reusable across trials — all
/// arenas (queue buckets, planes, commit log, choice scratch) keep their
/// capacity.
class TrialRunner {
 public:
  explicit TrialRunner(const CompiledNetlist& compiled);

  ConformanceReport run(const sg::StateGraph& spec, const SpecBinding& binding,
                        const ClosedLoopConfig& config, VcdRecorder* recorder = nullptr);

  /// Settle the cache for `fixed` with a `lanes`-wide plane pass (run()
  /// itself settles 1 lane on a cache miss; TrialBatch primes the full
  /// group width so the word-parallel path carries the production load).
  void prime_settle(const std::vector<std::pair<netlist::NetId, bool>>& fixed, int lanes);

  const CompiledNetlist& compiled() const { return *compiled_; }

 private:
  const std::vector<std::uint8_t>& settled(
      const std::vector<std::pair<netlist::NetId, bool>>& fixed, int lanes);
  void run_fast(const sg::StateGraph& spec, const SpecBinding& binding,
                const ClosedLoopConfig& config, ConformanceReport& report,
                VcdRecorder* recorder);

  const CompiledNetlist* compiled_;
  Simulator sim_;
  BatchPlanes planes_;
  std::vector<std::pair<netlist::NetId, bool>> settle_key_;
  std::vector<std::uint8_t> settled_;
  bool have_settle_ = false;
  std::vector<Simulator::Commit> log_;
  std::vector<sg::TransitionLabel> choices_;
};

/// Up to 64 trials through one shared plane settle + one TrialRunner.
class TrialBatch {
 public:
  static constexpr int kLanes = 64;

  explicit TrialBatch(const CompiledNetlist& compiled) : runner_(compiled) {}

  /// Run configs[0..n) (n <= 64) and write one single-trial report each to
  /// out[0..n).  Lanes whose config is identical to an earlier lane's
  /// share that lane's execution (lockstep); the rest peel off to the
  /// scalar runner.  Configs carrying callbacks (observer/on_initialized)
  /// never share.
  void run(const sg::StateGraph& spec, const SpecBinding& binding,
           const ClosedLoopConfig* configs, int n, ConformanceReport* out);

  TrialRunner& runner() { return runner_; }

 private:
  TrialRunner runner_;
};

}  // namespace nshot::sim
