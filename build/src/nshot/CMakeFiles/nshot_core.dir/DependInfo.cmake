
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nshot/architecture.cpp" "src/nshot/CMakeFiles/nshot_core.dir/architecture.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/architecture.cpp.o.d"
  "/root/repo/src/nshot/delay_requirement.cpp" "src/nshot/CMakeFiles/nshot_core.dir/delay_requirement.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/delay_requirement.cpp.o.d"
  "/root/repo/src/nshot/hazard_analysis.cpp" "src/nshot/CMakeFiles/nshot_core.dir/hazard_analysis.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/hazard_analysis.cpp.o.d"
  "/root/repo/src/nshot/spec_derivation.cpp" "src/nshot/CMakeFiles/nshot_core.dir/spec_derivation.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/spec_derivation.cpp.o.d"
  "/root/repo/src/nshot/synthesis.cpp" "src/nshot/CMakeFiles/nshot_core.dir/synthesis.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/synthesis.cpp.o.d"
  "/root/repo/src/nshot/trigger.cpp" "src/nshot/CMakeFiles/nshot_core.dir/trigger.cpp.o" "gcc" "src/nshot/CMakeFiles/nshot_core.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nshot_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/gatelib/CMakeFiles/nshot_gatelib.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nshot_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
