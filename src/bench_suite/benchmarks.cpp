#include "bench_suite/benchmarks.hpp"

#include "bench_suite/generators.hpp"
#include "util/error.hpp"

namespace nshot::bench_suite {
namespace {

using V = std::vector<std::string>;
using VV = std::vector<std::vector<std::string>>;

/// The OR-causality cell extended with a serial tail of `tail` output
/// signals between c+ completion and the acknowledge d+ (rising) and
/// symmetrically before d- (falling).  Used to scale the industrial
/// non-distributive interface circuits to their Table 2 state counts.
sg::StateGraph or_causality_cell_ext(const std::string& name, const std::string& prefix,
                                     int tail) {
  sg::StateGraph cell(name);
  const sg::SignalId a = cell.add_signal(prefix + "a", sg::SignalKind::kInput);
  const sg::SignalId b = cell.add_signal(prefix + "b", sg::SignalKind::kInput);
  const sg::SignalId c = cell.add_signal(prefix + "c", sg::SignalKind::kNonInput);
  const sg::SignalId d = cell.add_signal(prefix + "d", sg::SignalKind::kInput);
  std::vector<sg::SignalId> ts;
  for (int i = 0; i < tail; ++i)
    ts.push_back(cell.add_signal(prefix + "t" + std::to_string(i), sg::SignalKind::kNonInput));

  auto bit = [](sg::SignalId x) { return 1ULL << x; };
  const std::uint64_t tail_mask = [&] {
    std::uint64_t m = 0;
    for (const sg::SignalId t : ts) m |= bit(t);
    return m;
  }();

  // Rising half: a+ and b+ race to excite c+ (detonant initial state).
  const sg::StateId s0000 = cell.add_state(0);
  const sg::StateId s1000 = cell.add_state(bit(a));
  const sg::StateId s0100 = cell.add_state(bit(b));
  const sg::StateId s1100 = cell.add_state(bit(a) | bit(b));
  const sg::StateId s1010 = cell.add_state(bit(a) | bit(c));
  const sg::StateId s0110 = cell.add_state(bit(b) | bit(c));
  const sg::StateId s1110 = cell.add_state(bit(a) | bit(b) | bit(c));

  const sg::TransitionLabel ap{a, true}, am{a, false}, bp{b, true}, bm{b, false};
  const sg::TransitionLabel cp{c, true}, cm{c, false}, dp{d, true}, dm{d, false};

  cell.add_edge(s0000, ap, s1000);
  cell.add_edge(s0000, bp, s0100);
  cell.add_edge(s1000, bp, s1100);
  cell.add_edge(s1000, cp, s1010);
  cell.add_edge(s0100, ap, s1100);
  cell.add_edge(s0100, cp, s0110);
  cell.add_edge(s1100, cp, s1110);
  cell.add_edge(s1010, bp, s1110);
  cell.add_edge(s0110, ap, s1110);

  // Rising tail: t0+ ... t(k-1)+ in series, then d+.
  std::uint64_t high = bit(a) | bit(b) | bit(c);
  sg::StateId cursor = s1110;
  for (const sg::SignalId t : ts) {
    high |= bit(t);
    const sg::StateId next = cell.add_state(high);
    cell.add_edge(cursor, sg::TransitionLabel{t, true}, next);
    cursor = next;
  }
  high |= bit(d);
  const sg::StateId s_all = cell.add_state(high);  // a b c d and tail all high
  cell.add_edge(cursor, dp, s_all);

  // Falling half: a- and b- race to excite c- (detonant state s_all).
  const std::uint64_t base = bit(d) | tail_mask;  // stays high while abc fall
  const sg::StateId f011 = cell.add_state(base | bit(b) | bit(c));
  const sg::StateId f101 = cell.add_state(base | bit(a) | bit(c));
  const sg::StateId f001 = cell.add_state(base | bit(c));
  const sg::StateId f010 = cell.add_state(base | bit(b));
  const sg::StateId f100 = cell.add_state(base | bit(a));
  const sg::StateId f000 = cell.add_state(base);

  cell.add_edge(s_all, am, f011);
  cell.add_edge(s_all, bm, f101);
  cell.add_edge(f011, bm, f001);
  cell.add_edge(f011, cm, f010);
  cell.add_edge(f101, am, f001);
  cell.add_edge(f101, cm, f100);
  cell.add_edge(f001, cm, f000);
  cell.add_edge(f010, bm, f000);
  cell.add_edge(f100, am, f000);

  // Falling tail: t0- ... t(k-1)-, then d- closes the cycle.
  std::uint64_t low = base;
  cursor = f000;
  for (const sg::SignalId t : ts) {
    low &= ~bit(t);
    const sg::StateId next = cell.add_state(low);
    cell.add_edge(cursor, sg::TransitionLabel{t, false}, next);
    cursor = next;
  }
  cell.add_edge(cursor, dm, s0000);
  cell.set_initial(s0000);
  return cell;
}

/// read-write core: the output c fires twice per cycle, triggered by the
/// two instances of input a; the d/e context of the two excitation regions
/// overlaps in code space, so a single monotonous cube per region cannot
/// exist (the SYN-style baseline must add state signals — Table 2 note (2))
/// while CSC still holds (the shared code has identical non-input
/// excitation in both phases).
const char* kReadWriteCoreG = R"(
.model read-write-core
.inputs a d e
.outputs c
.graph
a+/1 c+/1 d+
c+/1 a-/1
d+ a-/1
a-/1 c-/1
c-/1 a+/2
a+/2 c+/2 e+
c+/2 a-/2
e+ a-/2
a-/2 c-/2
c-/2 d- e-
d- a+/1
e- a+/1
.marking { <d-,a+> <e-,a+> }
.end
)";

std::vector<BenchmarkInfo> make_registry() {
  std::vector<BenchmarkInfo> list;
  auto add = [&list](BenchmarkInfo info) { list.push_back(std::move(info)); };

  // ---- first part of Table 2: distributive specifications ---------------
  add({"chu133", 24, "352/5.2", "232/4.8", "256/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "chu133", {"a", "b"}, {"c", "d", "e"},
             VV{{"a+", "b+", "c+", "d+"}, {"e+"}, {"a-", "b-"}, {"c-", "d-"}, {"e-"}}));
       }});
  add({"chu150", 26, "232/7.0", "240/4.8", "240/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "chu150", {"a", "b"}, {"c", "d", "e"},
             VV{{"a+", "b+", "c+", "d+"}, {"e+"}, {"c-", "d-"}, {"a-", "b-"}, {"e-"}}));
       }});
  add({"chu172", 12, "104/1.6", "152/3.6", "120/2.4", false, false, [] {
         return build_g(staged_cycle_g("chu172", {"a", "b"}, {"c", "d"},
                                       VV{{"a+", "b+"}, {"c+", "d+"}, {"a-", "b-"},
                                          {"c-", "d-"}}));
       }});
  add({"converta", 18, "432/6.8", "496/6.0", "488/4.8", false, false, [] {
         return build_g(choice_cycle_g(
             "converta", {"r", "s"}, {"a", "c", "d", "e"},
             VV{{"r+", "a+", "c+", "r-", "a-", "c-"},
                {"s+", "d+", "a+/2", "c+/2", "e+", "s-", "d-", "a-/2", "c-/2", "e-"}}));
       }});
  add({"ebergen", 18, "280/5.6", "344/4.8", "312/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "ebergen", {"a", "d"}, {"b", "c", "e"},
             VV{{"a+", "b+", "c+"}, {"d+"}, {"e+"}, {"a-", "b-", "c-"}, {"d-"}, {"e-"}}));
       }});
  add({"full", 16, "224/5.2", "240/4.8", "240/4.8", false, false, [] {
         return build_g(staged_cycle_g("full", {"a", "b"}, {"c", "d"},
                                       VV{{"a+", "b+", "c+"}, {"d+"}, {"a-", "b-", "c-"},
                                          {"d-"}}));
       }});
  add({"hazard", 12, "296/6.6", "256/4.8", "232/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "hazard", {"a", "b"}, {"c", "d", "e"},
             VV{{"a+", "b+"}, {"c+"}, {"d+"}, {"e+"}, {"a-", "b-"}, {"c-"}, {"d-"}, {"e-"}}));
       }});
  add({"hybridf", 80, "274/6.6", "352/4.8", "336/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "hybridf", {"a", "b", "c"}, {"d", "e", "f", "g", "h"},
             VV{{"a+", "b+", "c+", "d+", "e+"},
                {"f+", "g+", "h+"},
                {"a-", "b-", "c-", "d-", "e-"},
                {"f-", "g-", "h-"}}));
       }});
  add({"pe-send-ifc", 117, "1232/12.2", "1832/6.0", "1408/6.0", false, false, [] {
         return build_g(staged_cycle_g(
             "pe-send-ifc", {"a", "b", "c"}, {"d", "e", "f", "g"},
             VV{{"a+", "b+", "c+", "d+", "e+", "f+"},
                {"g+"},
                {"a-", "b-", "c-", "d-", "e-", "f-"},
                {"g-"}}));
       }});
  add({"qr42", 18, "280/5.6", "344/4.8", "312/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "qr42", {"r1", "r2"}, {"a", "b", "c"},
             VV{{"r1+", "r2+", "a+"}, {"b+"}, {"c+"}, {"r1-", "r2-", "a-"}, {"b-"}, {"c-"}}));
       }});
  add({"vbe10b", 256, "1008/10.0", "800/4.8", "744/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "vbe10b", {"x", "b1", "b2", "b3"}, {"b4", "b5", "b6", "b7"},
             VV{{"x+"},
                {"b1+", "b2+", "b3+", "b4+", "b5+", "b6+", "b7+"},
                {"x-"},
                {"b1-", "b2-", "b3-", "b4-", "b5-", "b6-", "b7-"}}));
       }});
  add({"vbe5b", 24, "272/4.2", "240/3.6", "240/3.6", false, false, [] {
         return build_g(staged_cycle_g(
             "vbe5b", {"a", "b"}, {"c", "d", "e"},
             VV{{"a+", "b+", "c+"}, {"d+", "e+"}, {"a-", "b-", "c-"}, {"d-", "e-"}}));
       }});
  add({"wrdatab", 216, "824/4.8", "840/4.8", "760/4.8", false, false, [] {
         return build_g(parallel_chains_g(
             "wrdatab", "m", /*master_is_input=*/true,
             VV{{"r1", "p1"}, {"r2", "p2"}, {"r3", "p3"}, {"r4", "p4", "q4"}},
             /*inputs=*/{"r1", "r2", "r3", "r4"},
             /*outputs=*/{"p1", "p2", "p3", "p4", "q4"}));
       }});
  add({"sbuf-send-ctl", 27, "408/5.2", "696/4.8", "320/3.6", false, false, [] {
         return build_g(staged_cycle_g(
             "sbuf-send-ctl", {"a", "b"}, {"c", "d", "e"},
             VV{{"a+", "b+", "c+", "d+"}, {"e+"}, {"a-", "b-", "c-", "d-"}, {"e-"}}));
       }});
  add({"pr-rcv-ifc", 65, "1176/9.8", "1640/6.0", "1144/4.8", false, false, [] {
         return build_g(staged_cycle_g(
             "pr-rcv-ifc", {"a", "b", "c"}, {"d", "e", "f", "g"},
             VV{{"a+", "b+", "c+", "d+", "e+"},
                {"f+", "g+"},
                {"a-", "b-", "c-", "d-", "e-"},
                {"f-", "g-"}}));
       }});
  add({"master-read", 2108, "1016/6.4", "880/4.8", "824/4.8", false, false, [] {
         return build_g(parallel_chains_g(
             "master-read", "m", /*master_is_input=*/true,
             VV{{"r1", "p1", "q1"}, {"r2", "p2", "q2"}, {"r3", "p3", "q3"},
                {"r4", "p4", "q4"}, {"r5", "p5", "q5"}},
             /*inputs=*/{"r1", "r2", "r3", "r4", "r5"},
             /*outputs=*/{"p1", "q1", "p2", "q2", "p3", "q3", "p4", "q4", "p5", "q5"}));
       }});
  add({"read-write", 315, "740/7.6", "(2)", "608/6", false, false, [] {
         const sg::StateGraph core = build_g(kReadWriteCoreG);
         const sg::StateGraph ring = build_g(staged_cycle_g(
             "ring", {"f", "h", "j", "l"}, {"g", "i", "k"},
             VV{{"f+", "g+"}, {"h+", "i+"}, {"j+", "k+"}, {"l+", "f-"}, {"g-", "h-"},
                {"i-", "j-"}, {"k-", "l-"}}));
         return sg_product(core, ring, "read-write");
       }});
  add({"tsbmsi", 1023, "(4)", "960/4.8", "928/4.8", false, true, [] {
         VV chains;
         std::vector<std::string> ins, outs;
         for (int i = 1; i <= 9; ++i) {
           const std::string b = "b" + std::to_string(i);
           chains.push_back({b});
           (i <= 4 ? ins : outs).push_back(b);
         }
         return build_g(parallel_chains_g("tsbmsi", "m", true, chains, ins, outs));
       }});
  add({"tsbmsiBRK", 4729, "(4)", "(3)", "1648/4.8", false, true, [] {
         VV chains;
         std::vector<std::string> ins, outs;
         for (int i = 1; i <= 11; ++i) {
           const std::string b = "b" + std::to_string(i);
           chains.push_back({b});
           (i <= 5 ? ins : outs).push_back(b);
         }
         return build_g(parallel_chains_g("tsbmsiBRK", "m", true, chains, ins, outs));
       }});

  // ---- second part of Table 2: non-distributive industrial designs ------
  add({"pmcm1", 26, "(1)", "(1)", "304/4.8", true, false,
       [] { return or_causality_cell_ext("pmcm1", "", 6); }});
  add({"pmcm2", 13, "(1)", "(1)", "160/3.6", true, false,
       [] { return or_causality_cell_ext("pmcm2", "", 0); }});
  add({"combuf1", 32, "(1)", "(1)", "480/4.8", true, false,
       [] { return or_causality_cell_ext("combuf1", "", 9); }});
  add({"combuf2", 24, "(1)", "(1)", "456/4.8", true, false,
       [] { return or_causality_cell_ext("combuf2", "", 5); }});
  add({"sing2dual-inp", 65, "(1)", "(1)", "386/4.8", true, false, [] {
         const sg::StateGraph cell = or_causality_cell("cell", "u");
         const sg::StateGraph ring = build_g(staged_cycle_g(
             "ring", {"x"}, {"y"}, VV{{"x+"}, {"y+"}, {"x-"}, {"y-"}}));
         return sg_product(cell, ring, "sing2dual-inp");
       }});
  add({"sing2dual-out", 204, "(1)", "(1)", "648/3.6", true, false, [] {
         const sg::StateGraph left = or_causality_cell("left", "u");
         const sg::StateGraph right = or_causality_cell("right", "v");
         return sg_product(left, right, "sing2dual-out");
       }});

  return list;
}

}  // namespace

const std::vector<BenchmarkInfo>& all_benchmarks() {
  static const std::vector<BenchmarkInfo> registry = make_registry();
  return registry;
}

const BenchmarkInfo& find_benchmark(const std::string& name) {
  for (const BenchmarkInfo& info : all_benchmarks())
    if (info.name == name) return info;
  NSHOT_REQUIRE(false, "unknown benchmark " + name);
  return all_benchmarks().front();  // unreachable
}

sg::StateGraph build_benchmark(const std::string& name) { return find_benchmark(name).build(); }

sg::StateGraph build_read_write_core() { return build_g(kReadWriteCoreG); }

}  // namespace nshot::bench_suite
