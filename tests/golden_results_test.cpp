// Golden-result regression pins: the exact synthesis outcome (state count,
// cover size, literal count, area, delay) for every Table 2 benchmark.
// The whole flow is deterministic, so any diff here is a real change in
// minimization or architecture quality — update the table deliberately
// (and re-check EXPERIMENTS.md) if an algorithm improvement moves them.
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"

namespace nshot {
namespace {

struct Golden {
  const char* name;
  int states;
  std::size_t cubes;
  int literals;
  double area;
  double delay;
};

constexpr Golden kGolden[] = {
    {"chu133", 23, 4, 10, 376, 3.6},
    {"chu150", 23, 4, 8, 360, 3.6},
    {"chu172", 12, 2, 4, 224, 3.6},
    {"converta", 15, 9, 11, 536, 4.8},
    {"ebergen", 18, 4, 4, 328, 3.6},
    {"full", 16, 4, 8, 272, 3.6},
    {"hazard", 12, 6, 8, 376, 3.6},
    {"hybridf", 76, 4, 16, 664, 4.8},
    {"pe-send-ifc", 128, 4, 14, 560, 4.8},
    {"qr42", 18, 6, 10, 392, 3.6},
    {"vbe10b", 256, 2, 2, 384, 3.6},
    {"vbe5b", 20, 4, 10, 376, 3.6},
    {"wrdatab", 216, 10, 10, 600, 3.6},
    {"sbuf-send-ctl", 32, 4, 10, 376, 3.6},
    {"pr-rcv-ifc", 68, 4, 14, 560, 4.8},
    {"master-read", 2048, 20, 20, 1200, 3.6},
    {"read-write", 315, 8, 14, 528, 3.6},
    {"tsbmsi", 1024, 2, 2, 472, 3.6},
    {"tsbmsiBRK", 4096, 2, 2, 560, 3.6},
    {"pmcm1", 26, 16, 24, 1000, 4.8},
    {"pmcm2", 14, 4, 8, 248, 4.8},
    {"combuf1", 32, 22, 30, 1360, 4.8},
    {"combuf2", 24, 14, 22, 880, 4.8},
    {"sing2dual-inp", 56, 6, 10, 368, 4.8},
    {"sing2dual-out", 196, 8, 16, 496, 4.8},
};

class GoldenResultsTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenResultsTest, SynthesisOutcomeIsPinned) {
  const Golden& expected = GetParam();
  const sg::StateGraph g = bench_suite::build_benchmark(expected.name);
  EXPECT_EQ(g.num_states(), expected.states);
  const core::SynthesisResult result = core::synthesize(g);
  EXPECT_EQ(result.cover.size(), expected.cubes);
  EXPECT_EQ(result.cover.literal_count(), expected.literals);
  EXPECT_DOUBLE_EQ(result.stats.area, expected.area);
  EXPECT_DOUBLE_EQ(result.stats.delay, expected.delay);
}

INSTANTIATE_TEST_SUITE_P(Table2, GoldenResultsTest, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace nshot
