file(REMOVE_RECURSE
  "libnshot_sim.a"
)
