file(REMOVE_RECURSE
  "libnshot_sg.a"
)
