// Compiled-kernel layer: single-thread speedup and equivalence measurement.
//
// Every hot path of the kernel layer keeps its original implementation
// compiled in behind a reference flag (ConformanceOptions::reference_kernels,
// StressOptions::reference_kernels, ExactOptions inherited reference_kernels,
// ReachabilityOptions::reference_maps, compute_regions_reference).  For each
// benchmark circuit this harness runs the Monte Carlo conformance sweep and
// the full stress campaign once through the reference path and once through
// the compiled path — both at jobs=1, so the comparison isolates the kernels
// from the parallel engine — and
//   * asserts the two reports are byte-identical;
//   * records wall-clock times and speedups in BENCH_kernels.json.
// The logic / reachability / region kernels are timed the same way on
// their own inputs.
//
// `--smoke` shrinks every workload for CI sanity runs; the JSON records the
// flag so smoke numbers are never mistaken for measurements.
//
// `--baseline FILE` additionally compares the compiled-path times against a
// BENCH_parallel.json produced by a pre-kernel-layer build (its jobs=1
// workload is identical to this harness's), reporting the cross-build
// speedup the in-binary reference comparison cannot see: the reference
// flags restore the old algorithms and per-trial construction, but both
// paths share the rewritten event loop.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "logic/exact.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace nshot;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Wall-clock minimum over repeated samples — the minimum is the standard
/// noise filter on a busy single-core host.  Legs under comparison must
/// interleave their samples (ref, fast, ref, fast, ...) so a load spike
/// lands on both rather than poisoning one leg's whole window.  The
/// sample standard deviation is reported alongside the minimum: a row
/// whose sd rivals its min was measured through noise and should not gate
/// anything.
struct MinTimer {
  double best = 0.0;
  double sum = 0.0, sumsq = 0.0;
  int n = 0;
  template <typename Body>
  void sample(Body&& body) {
    const auto t0 = Clock::now();
    body();
    const double ms = ms_since(t0);
    if (n++ == 0 || ms < best) best = ms;
    sum += ms;
    sumsq += ms * ms;
  }
  double mean() const { return n > 0 ? sum / n : 0.0; }
  double sd() const {
    if (n < 2) return 0.0;
    const double m = mean();
    return std::sqrt(std::max(0.0, (sumsq - static_cast<double>(n) * m * m) /
                                       static_cast<double>(n - 1)));
  }
};

std::string conformance_fingerprint(const sim::ConformanceReport& r) {
  std::ostringstream out;
  out << r.runs << '/' << r.external_transitions << '/' << r.internal_toggles << '/'
      << r.absorbed_pulses << '/' << r.simulated_time << '/' << r.deadlocks << '/'
      << r.budget_exhausted << '/' << r.violations.size();
  for (const sim::ConformanceViolation& v : r.violations)
    out << '|' << v.seed << '@' << v.time << ':' << v.description;
  return out.str();
}

struct CaseTiming {
  std::string name;
  int states = 0, signals = 0;
  double conf_reference_ms = 0, conf_compiled_ms = 0, conf_batched_ms = 0;
  double conf_reference_sd = 0, conf_compiled_sd = 0, conf_batched_sd = 0;
  double stress_reference_ms = 0, stress_compiled_ms = 0, stress_batched_ms = 0;
  double stress_reference_sd = 0, stress_compiled_sd = 0, stress_batched_sd = 0;
  /// Committed transitions of the conformance sweep (external + internal)
  /// — identical across legs by the byte-identity contract, so per-leg
  /// events/sec ratios are exactly the inverse time ratios.  This is
  /// committed-event throughput, not raw queue traffic (absorbed and
  /// stale events are excluded); bench_queue_scaling records the raw
  /// number on its open-loop workload.
  long conf_events = 0;
  double conf_events_per_sec(double ms) const {
    return ms > 0 ? static_cast<double>(conf_events) / (ms / 1e3) : 0;
  }
  bool identical = false;
};

CaseTiming measure(const std::string& name, bool smoke) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::SynthesisResult result = core::synthesize(g);

  sim::ConformanceOptions conf;
  conf.seed = 7;
  conf.runs = smoke ? 8 : 96;
  conf.max_transitions = 150;
  conf.jobs = 1;

  faults::StressOptions stress;
  stress.seed = 2026;
  stress.margin_runs = smoke ? 2 : 8;
  stress.run.max_transitions = 100;
  stress.adversarial.restarts = smoke ? 1 : 4;
  stress.adversarial.iterations = smoke ? 5 : 40;
  stress.adversarial.run.max_transitions = 100;
  stress.jobs = 1;
  stress.adversarial.jobs = 1;

  CaseTiming timing;
  timing.name = name;
  timing.states = g.num_states();
  timing.signals = g.num_signals();
  // Virtualized hosts show steal-time spikes invisible to the guest; only
  // a deep min-of-N converges on the true floor.
  const int reps = smoke ? 1 : 15;

  // Three legs, interleaved: the uncompiled reference kernels, the frozen
  // pre-batch compiled driver (reference_driver — binary heap, per-trial
  // settle, std::function observer), and the default batched engine
  // (calendar queue + TrialBatch).  The recorded speedups are
  // reference/compiled (the kernel layer's historical claim) and
  // compiled/batched (this layer's claim); all three reports must be
  // byte-identical.
  sim::ConformanceReport conf_reference, conf_compiled, conf_batched;
  faults::StressReport stress_reference, stress_compiled, stress_batched;
  MinTimer conf_ref_t, conf_fast_t, conf_batch_t, stress_ref_t, stress_fast_t, stress_batch_t;
  for (int i = 0; i < reps; ++i) {
    conf.reference_kernels = true;
    conf.reference_driver = false;
    conf_ref_t.sample([&] { conf_reference = sim::check_conformance(g, result.circuit, conf); });
    conf.reference_kernels = false;
    conf.reference_driver = true;
    conf_fast_t.sample([&] { conf_compiled = sim::check_conformance(g, result.circuit, conf); });
    conf.reference_driver = false;
    conf_batch_t.sample([&] { conf_batched = sim::check_conformance(g, result.circuit, conf); });
    stress.reference_kernels = true;
    stress.reference_driver = false;
    stress_ref_t.sample(
        [&] { stress_reference = faults::run_stress(g, result.circuit, name, stress); });
    stress.reference_kernels = false;
    stress.reference_driver = true;
    stress_fast_t.sample(
        [&] { stress_compiled = faults::run_stress(g, result.circuit, name, stress); });
    stress.reference_driver = false;
    stress_batch_t.sample(
        [&] { stress_batched = faults::run_stress(g, result.circuit, name, stress); });
  }
  timing.conf_reference_ms = conf_ref_t.best;
  timing.conf_compiled_ms = conf_fast_t.best;
  timing.conf_batched_ms = conf_batch_t.best;
  timing.conf_reference_sd = conf_ref_t.sd();
  timing.conf_compiled_sd = conf_fast_t.sd();
  timing.conf_batched_sd = conf_batch_t.sd();
  timing.stress_reference_ms = stress_ref_t.best;
  timing.stress_compiled_ms = stress_fast_t.best;
  timing.stress_batched_ms = stress_batch_t.best;
  timing.stress_reference_sd = stress_ref_t.sd();
  timing.stress_compiled_sd = stress_fast_t.sd();
  timing.stress_batched_sd = stress_batch_t.sd();

  timing.conf_events = conf_reference.external_transitions + conf_reference.internal_toggles;
  const std::string conf_fp = conformance_fingerprint(conf_reference);
  const std::string stress_fp = faults::stress_report_json(stress_reference);
  timing.identical = conf_fp == conformance_fingerprint(conf_compiled) &&
                     conf_fp == conformance_fingerprint(conf_batched) &&
                     stress_fp == faults::stress_report_json(stress_compiled) &&
                     stress_fp == faults::stress_report_json(stress_batched);
  return timing;
}

struct KernelTiming {
  std::string name;
  int states = 0, signals = 0;  // workload size, 0 = not state-graph based
  double reference_ms = 0, fast_ms = 0;
  double reference_sd = 0, fast_sd = 0;
  bool identical = false;
};

/// Exact minimizer: hashed cube sets vs ordered std::set, over random
/// incompletely-specified functions.
KernelTiming measure_exact(bool smoke) {
  const int specs = smoke ? 4 : 24;
  std::vector<logic::TwoLevelSpec> inputs;
  for (int i = 0; i < specs; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 0x9E3779B9ULL + 41);
    const int num_inputs = 6 + static_cast<int>(rng.next_below(3));
    logic::TwoLevelSpec spec(num_inputs, 2);
    const std::uint64_t space = 1ULL << num_inputs;
    for (int o = 0; o < 2; ++o) {
      for (std::uint64_t m = 0; m < space; ++m) {
        const double roll = rng.next_double(0.0, 1.0);
        if (roll < 0.35)
          spec.add_on(o, m);
        else if (roll < 0.75)
          spec.add_off(o, m);
      }
    }
    spec.normalize();
    inputs.push_back(std::move(spec));
  }

  KernelTiming timing;
  timing.name = "generate_primes";
  logic::ExactOptions options;
  options.jobs = 1;
  const int reps = smoke ? 1 : 9;

  // Time the prime enumeration alone: the downstream covering solve is
  // identical on both paths and ~10x larger, so timing exact_minimize
  // would bury the kernel under shared work.  Equivalence still checks
  // the full minimizer once per path.
  auto enumerate = [&](std::string& out) {
    out.clear();
    for (const logic::TwoLevelSpec& spec : inputs)
      for (int o = 0; o < spec.num_outputs(); ++o) {
        const auto primes = logic::generate_primes(spec, o, options);
        if (primes)
          for (const logic::Cube& c : *primes) out += c.to_string();
      }
  };
  std::string reference_out, fast_out;
  MinTimer ref_t, fast_t;
  for (int i = 0; i < reps; ++i) {
    options.reference_kernels = true;
    ref_t.sample([&] { enumerate(reference_out); });
    options.reference_kernels = false;
    fast_t.sample([&] { enumerate(fast_out); });
  }
  timing.reference_ms = ref_t.best;
  timing.fast_ms = fast_t.best;
  timing.reference_sd = ref_t.sd();
  timing.fast_sd = fast_t.sd();

  options.reference_kernels = true;
  std::string reference_minimized;
  for (const logic::TwoLevelSpec& spec : inputs)
    reference_minimized += logic::exact_minimize(spec, options).to_string();
  options.reference_kernels = false;
  std::string fast_minimized;
  for (const logic::TwoLevelSpec& spec : inputs)
    fast_minimized += logic::exact_minimize(spec, options).to_string();

  timing.identical = reference_out == fast_out && reference_minimized == fast_minimized;
  return timing;
}

/// Token-flow reachability: hashed marking maps vs ordered std::map, over
/// generated controller STGs.
KernelTiming measure_reachability(bool smoke) {
  // Four three-stage chains give a marking graph in the thousands of
  // states — large enough that map lookups, not parsing, dominate.
  std::vector<stg::Stg> nets;
  nets.push_back(stg::parse_g(bench_suite::parallel_chains_g(
      "k-chains", "m", /*master_is_input=*/true,
      {{"a0", "a1", "a2"}, {"b0", "b1", "b2"}, {"c0", "c1", "c2"}, {"d0", "d1", "d2"}},
      /*inputs=*/{"a0", "b0", "c0", "d0"},
      /*outputs=*/{"a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2"})));
  nets.push_back(stg::parse_g(bench_suite::staged_cycle_g(
      "k-stages", {"r0", "r1"}, {"g0", "g1", "d0", "d1"},
      {{"r0+", "r1+"}, {"g0+", "g1+"}, {"d0+", "d1+"}, {"r0-", "r1-"},
       {"g0-", "g1-"}, {"d0-", "d1-"}})));
  const int repeats = smoke ? 2 : 40;
  const int reps = smoke ? 1 : 9;

  KernelTiming timing;
  timing.name = "reachability";
  stg::ReachabilityOptions options;
  for (const stg::Stg& net : nets) {
    const sg::StateGraph g = stg::build_state_graph(net, options);
    timing.states += g.num_states();
    timing.signals = std::max(timing.signals, g.num_signals());
  }

  std::string reference_out, fast_out;
  auto build = [&](std::string& out) {
    out.clear();
    for (int i = 0; i < repeats; ++i)
      for (const stg::Stg& net : nets)
        out = std::to_string(stg::build_state_graph(net, options).num_states());
  };
  MinTimer ref_t, fast_t;
  for (int i = 0; i < reps; ++i) {
    options.reference_maps = true;
    ref_t.sample([&] { build(reference_out); });
    options.reference_maps = false;
    fast_t.sample([&] { build(fast_out); });
  }
  timing.reference_ms = ref_t.best;
  timing.fast_ms = fast_t.best;
  timing.reference_sd = ref_t.sd();
  timing.fast_sd = fast_t.sd();

  timing.identical = reference_out == fast_out;
  return timing;
}

/// Region computation: word-packed planes and bit floods vs the ordered
/// std::set / std::map reference, over the benchmark suite.
KernelTiming measure_regions(bool smoke) {
  std::vector<sg::StateGraph> graphs;
  for (const char* name : {"chu133", "converta", "vbe5b", "read-write"})
    graphs.push_back(bench_suite::build_benchmark(name));
  const int repeats = smoke ? 2 : 200;
  const int reps = smoke ? 1 : 5;

  KernelTiming timing;
  timing.name = "regions";
  for (const sg::StateGraph& g : graphs) {
    timing.states += g.num_states();
    timing.signals = std::max(timing.signals, g.num_signals());
  }

  // Time the region computation alone; rendering to_string is shared
  // serialization work that would dilute the kernel ratio, so the
  // byte-equality comparison runs once outside the timers.
  std::size_t reference_regions = 0, fast_regions = 0;
  MinTimer ref_t, fast_t;
  for (int r = 0; r < reps; ++r) {
    ref_t.sample([&] {
      reference_regions = 0;
      for (int i = 0; i < repeats; ++i)
        for (const sg::StateGraph& g : graphs)
          for (const sg::SignalId a : g.noninput_signals())
            reference_regions += sg::compute_regions_reference(g, a).regions.size();
    });
    fast_t.sample([&] {
      fast_regions = 0;
      for (int i = 0; i < repeats; ++i)
        for (const sg::StateGraph& g : graphs)
          for (const sg::SignalId a : g.noninput_signals())
            fast_regions += sg::compute_regions(g, a).regions.size();
    });
  }
  timing.reference_ms = ref_t.best;
  timing.fast_ms = fast_t.best;
  timing.reference_sd = ref_t.sd();
  timing.fast_sd = fast_t.sd();

  timing.identical = reference_regions == fast_regions;
  for (const sg::StateGraph& g : graphs)
    for (const sg::SignalId a : g.noninput_signals())
      timing.identical = timing.identical && sg::compute_regions_reference(g, a).to_string(g) ==
                                                 sg::compute_regions(g, a).to_string(g);
  return timing;
}

/// Cost of the observability layer on the hottest instrumented loop.
/// The pipeline is instrumented unconditionally (no recompile to turn it
/// on), so the number that matters is the price of the dormant
/// check-a-flag-and-return calls: `disabled_ms` times the conformance
/// sweep with no Session alive, `enabled_ms` with one collecting.  The
/// two legs interleave samples like every other comparison here.
struct ObsTiming {
  double disabled_ms = 0, enabled_ms = 0;
  std::string passes_fragment;  // per-pass breakdown from the enabled leg
  double overhead_pct() const {
    return disabled_ms > 0 ? (enabled_ms / disabled_ms - 1.0) * 100.0 : 0.0;
  }
};

ObsTiming measure_obs(bool smoke) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu133");
  const core::SynthesisResult result = core::synthesize(g);

  sim::ConformanceOptions conf;
  conf.seed = 7;
  conf.runs = smoke ? 8 : 96;
  conf.max_transitions = 150;
  conf.jobs = 1;

  ObsTiming timing;
  const int reps = smoke ? 1 : 15;
  MinTimer disabled_t, enabled_t;
  for (int i = 0; i < reps; ++i) {
    disabled_t.sample([&] { sim::check_conformance(g, result.circuit, conf); });
    {
      obs::Session session("bench_kernels", "obs-overhead");
      enabled_t.sample([&] { sim::check_conformance(g, result.circuit, conf); });
      if (timing.passes_fragment.empty())
        timing.passes_fragment = obs::passes_json_fragment(session.report());
    }
  }
  timing.disabled_ms = disabled_t.best;
  timing.enabled_ms = enabled_t.best;
  return timing;
}

/// A jobs=1 measurement from a pre-kernel-layer build of bench_parallel
/// (same workload as measure() above).
struct BaselineCase {
  std::string name;
  double conf_ms = 0, stress_ms = 0;
};

/// Minimal extraction from BENCH_parallel.json: per-case name plus the two
/// serial times.  Tolerant of field order as long as the times follow the
/// name within the case object.
std::vector<BaselineCase> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<BaselineCase> cases;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\": \"", pos)) != std::string::npos) {
    pos += 9;
    const std::size_t end = text.find('"', pos);
    if (end == std::string::npos) break;
    BaselineCase c;
    c.name = text.substr(pos, end - pos);
    auto number_after = [&](const char* key) {
      const std::size_t k = text.find(key, end);
      return k == std::string::npos ? 0.0
                                    : std::strtod(text.c_str() + k + std::strlen(key), nullptr);
    };
    c.conf_ms = number_after("\"conformance_serial_ms\": ");
    c.stress_ms = number_after("\"stress_serial_ms\": ");
    cases.push_back(std::move(c));
    pos = end;
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_kernels.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
      baseline_path = argv[++i];
    else
      out_path = argv[i];
  }
  const std::vector<BaselineCase> baseline = load_baseline(baseline_path);

  const int hardware = exec::hardware_jobs();
  std::printf("Kernel bench: reference vs compiled paths, jobs=1%s\n\n",
              smoke ? " (smoke)" : "");
  std::printf("%-12s %10s %10s %10s %7s %10s %10s %10s %7s %5s\n", "circuit", "conf ref",
              "conf fast", "conf batch", "batch x", "stress ref", "stress fast", "stress batch",
              "batch x", "same");

  bool all_identical = true;
  std::vector<CaseTiming> timings;
  for (const char* name : {"chu133", "converta", "vbe5b", "read-write"}) {
    const CaseTiming t = measure(name, smoke);
    NSHOT_REQUIRE(t.identical, "compiled report diverged from reference on " + t.name);
    all_identical &= t.identical;
    std::printf("%-12s %8.1fms %8.1fms %8.1fms %6.2fx %8.1fms %8.1fms %8.1fms %6.2fx %5s\n",
                t.name.c_str(), t.conf_reference_ms, t.conf_compiled_ms, t.conf_batched_ms,
                t.conf_compiled_ms / t.conf_batched_ms, t.stress_reference_ms,
                t.stress_compiled_ms, t.stress_batched_ms,
                t.stress_compiled_ms / t.stress_batched_ms, t.identical ? "yes" : "NO");
    timings.push_back(t);
  }

  std::printf("\n%-16s %12s %12s %8s %6s\n", "kernel", "ref", "fast", "x", "same");
  std::vector<KernelTiming> kernels;
  for (KernelTiming (*bench)(bool) : {&measure_exact, &measure_reachability, &measure_regions}) {
    const KernelTiming k = bench(smoke);
    NSHOT_REQUIRE(k.identical, "kernel " + k.name + " diverged from its reference");
    all_identical &= k.identical;
    std::printf("%-16s %10.1fms %10.1fms %7.2fx %6s\n", k.name.c_str(), k.reference_ms, k.fast_ms,
                k.reference_ms / k.fast_ms, k.identical ? "yes" : "NO");
    kernels.push_back(k);
  }

  const ObsTiming obs_timing = measure_obs(smoke);
  std::printf(
      "\nobservability: dormant %.1fms, collecting %.1fms (%+.2f%% while collecting)\n",
      obs_timing.disabled_ms, obs_timing.enabled_ms, obs_timing.overhead_pct());

  double conf_reference = 0, conf_compiled = 0, conf_batched = 0;
  double stress_reference = 0, stress_compiled = 0, stress_batched = 0;
  for (const CaseTiming& t : timings) {
    conf_reference += t.conf_reference_ms;
    conf_compiled += t.conf_compiled_ms;
    conf_batched += t.conf_batched_ms;
    stress_reference += t.stress_reference_ms;
    stress_compiled += t.stress_compiled_ms;
    stress_batched += t.stress_batched_ms;
  }
  const double conf_speedup = conf_compiled > 0 ? conf_reference / conf_compiled : 0;
  const double stress_speedup = stress_compiled > 0 ? stress_reference / stress_compiled : 0;
  const double total_speedup = (conf_compiled + stress_compiled) > 0
                                   ? (conf_reference + stress_reference) /
                                         (conf_compiled + stress_compiled)
                                   : 0;
  // The batched engine's claim: batched vs the frozen pre-batch compiled
  // driver, same workload, same thread.
  const double conf_batch_speedup = conf_batched > 0 ? conf_compiled / conf_batched : 0;
  const double stress_batch_speedup = stress_batched > 0 ? stress_compiled / stress_batched : 0;
  const double total_batch_speedup =
      (conf_batched + stress_batched) > 0
          ? (conf_compiled + stress_compiled) / (conf_batched + stress_batched)
          : 0;
  std::printf(
      "\ntotal: kernels vs reference: conformance %.2fx, stress %.2fx, combined %.2fx\n"
      "       batched vs pre-batch:  conformance %.2fx, stress %.2fx, combined %.2fx "
      "(single thread, %d hardware threads)\n",
      conf_speedup, stress_speedup, total_speedup, conf_batch_speedup, stress_batch_speedup,
      total_batch_speedup, hardware);

  // Cross-build comparison against a pre-kernel-layer bench_parallel run.
  double base_conf = 0, base_stress = 0, base_conf_compiled = 0, base_stress_compiled = 0;
  for (const BaselineCase& b : baseline) {
    for (const CaseTiming& t : timings) {
      if (t.name != b.name) continue;
      base_conf += b.conf_ms;
      base_stress += b.stress_ms;
      base_conf_compiled += t.conf_compiled_ms;
      base_stress_compiled += t.stress_compiled_ms;
    }
  }
  const bool have_baseline = base_conf_compiled > 0 && base_stress_compiled > 0;
  const double vs_base_conf = have_baseline ? base_conf / base_conf_compiled : 0;
  const double vs_base_stress = have_baseline ? base_stress / base_stress_compiled : 0;
  const double vs_base_total =
      have_baseline
          ? (base_conf + base_stress) / (base_conf_compiled + base_stress_compiled)
          : 0;
  if (have_baseline)
    std::printf(
        "vs pre-kernel build (%s): conformance %.2fx, stress %.2fx, combined %.2fx\n",
        baseline_path.c_str(), vs_base_conf, vs_base_stress, vs_base_total);

  std::ostringstream json;
  json << "{\n  \"hardware_jobs\": " << hardware << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"byte_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"conformance_speedup\": " << conf_speedup
       << ",\n  \"stress_speedup\": " << stress_speedup
       << ",\n  \"total_speedup\": " << total_speedup
       << ",\n  \"conformance_batch_speedup\": " << conf_batch_speedup
       << ",\n  \"stress_batch_speedup\": " << stress_batch_speedup
       << ",\n  \"total_batch_speedup\": " << total_batch_speedup << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CaseTiming& t = timings[i];
    json << "    {\"name\": \"" << t.name << "\", \"states\": " << t.states
         << ", \"signals\": " << t.signals << ", \"hardware_concurrency\": " << hardware
         << ", \"conformance_reference_ms\": " << t.conf_reference_ms
         << ", \"conformance_reference_sd\": " << t.conf_reference_sd
         << ", \"conformance_compiled_ms\": " << t.conf_compiled_ms
         << ", \"conformance_compiled_sd\": " << t.conf_compiled_sd
         << ", \"conformance_batched_ms\": " << t.conf_batched_ms
         << ", \"conformance_batched_sd\": " << t.conf_batched_sd
         << ", \"conformance_events\": " << t.conf_events
         << ", \"conformance_events_per_sec_reference\": "
         << t.conf_events_per_sec(t.conf_reference_ms)
         << ", \"conformance_events_per_sec_compiled\": "
         << t.conf_events_per_sec(t.conf_compiled_ms)
         << ", \"conformance_events_per_sec_batched\": "
         << t.conf_events_per_sec(t.conf_batched_ms)
         << ", \"stress_reference_ms\": " << t.stress_reference_ms
         << ", \"stress_reference_sd\": " << t.stress_reference_sd
         << ", \"stress_compiled_ms\": " << t.stress_compiled_ms
         << ", \"stress_compiled_sd\": " << t.stress_compiled_sd
         << ", \"stress_batched_ms\": " << t.stress_batched_ms
         << ", \"stress_batched_sd\": " << t.stress_batched_sd << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelTiming& k = kernels[i];
    json << "    {\"name\": \"" << k.name << "\", \"states\": " << k.states
         << ", \"signals\": " << k.signals << ", \"hardware_concurrency\": " << hardware
         << ", \"reference_ms\": " << k.reference_ms
         << ", \"reference_sd\": " << k.reference_sd << ", \"fast_ms\": " << k.fast_ms
         << ", \"fast_sd\": " << k.fast_sd << "}"
         << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"observability\": {\"disabled_ms\": " << obs_timing.disabled_ms
       << ", \"enabled_ms\": " << obs_timing.enabled_ms
       << ", \"overhead_pct\": " << obs_timing.overhead_pct() << ", "
       << obs_timing.passes_fragment << "}";
  if (have_baseline) {
    json << ",\n  \"baseline\": {\n    \"path\": \"" << baseline_path
         << "\",\n    \"conformance_speedup\": " << vs_base_conf
         << ",\n    \"stress_speedup\": " << vs_base_stress
         << ",\n    \"total_speedup\": " << vs_base_total << "\n  }";
  }
  json << "\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path);
  return 0;
}
