// Deterministic pseudo-random number generator used by the simulator and
// the property tests.  A small, explicit PRNG (splitmix64/xorshift) keeps
// randomized tests reproducible across standard-library implementations.
#pragma once

#include <cstdint>

namespace nshot {

/// Deterministic 64-bit PRNG (xorshift* seeded through splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t state_;
};

}  // namespace nshot
