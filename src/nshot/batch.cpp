#include "nshot/batch.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "stg/sg_format.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nshot {

namespace {

const std::set<std::string>& known_params() {
  static const std::set<std::string> keys = {
      "seed",        "jobs",     "grain",           "runs",
      "deadline_ms", "stage_deadline_ms", "verify_kernels", "reference_kernels",
      "stress",      "exact"};
  return keys;
}

bool parse_flag(const std::string& value) { return !value.empty() && value != "0"; }

/// Per-run pipeline options: the batch base with this entry's manifest
/// keys applied.  Values were syntax-checked by parse_manifest; range
/// errors here still name the run via the caller's context frame.
PipelineOptions entry_options(const PipelineOptions& base, const BatchEntry& entry) {
  PipelineOptions options = base;
  options.collect_observability = false;  // one session per batch run is pure overhead
  options.label = entry.id;
  for (const auto& [key, value] : entry.params) {
    if (key == "seed")
      options.run.seed = static_cast<std::uint64_t>(
          parse_long(value, 0, std::numeric_limits<long>::max(), "seed"));
    else if (key == "jobs")
      options.run.jobs = parse_int(value, 0, 4096, "jobs");
    else if (key == "grain")
      options.run.grain = parse_int(value, 0, 1'000'000, "grain");
    else if (key == "runs")
      options.conformance.runs = parse_int(value, 0, 1'000'000, "runs");
    else if (key == "deadline_ms")
      options.run.deadline_ms = parse_double(value, 0, 1e9, "deadline_ms");
    else if (key == "stage_deadline_ms")
      options.run.stage_deadline_ms = parse_double(value, 0, 1e9, "stage_deadline_ms");
    else if (key == "verify_kernels")
      options.run.verify_kernels = parse_flag(value);
    else if (key == "reference_kernels")
      options.run.reference_kernels = parse_flag(value);
    else if (key == "stress")
      options.stress_test = parse_flag(value);
    else if (key == "exact")
      options.synthesis.exact = parse_flag(value);
  }
  return options;
}

/// One attempt at one manifest entry, never throwing: spec resolution
/// failures (unknown benchmark, unreadable file, bad seed) are classified
/// exactly like pipeline failures.
RunOutcome attempt_entry(const BatchEntry& entry, const PipelineOptions& options) {
  try {
    return with_error_context("batch run " + entry.id, [&]() -> RunOutcome {
      Pipeline pipeline(options);
      if (starts_with(entry.spec, "bench:")) {
        return pipeline.run_checked(bench_suite::build_benchmark(entry.spec.substr(6)));
      }
      if (starts_with(entry.spec, "gen:")) {
        bench_suite::RandomStgOptions gen;
        gen.seed = static_cast<std::uint64_t>(
            parse_long(entry.spec.substr(4), 0, std::numeric_limits<long>::max(), "gen seed"));
        return pipeline.run_checked_g(bench_suite::random_semimodular_g(gen));
      }
      const std::string path = entry.spec.substr(5);  // "file:"
      std::ifstream stream(path);
      NSHOT_REQUIRE(static_cast<bool>(stream), "cannot open " + path);
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const bool is_sg = path.size() >= 3 && path.compare(path.size() - 3, 3, ".sg") == 0;
      if (is_sg) return pipeline.run_checked(stg::parse_sg(buffer.str()));
      return pipeline.run_checked_g(buffer.str());
    });
  } catch (const Error& e) {
    RunOutcome out;
    out.code = e.code();
    out.stage = "load";
    out.message = e.what();
    return out;
  } catch (const std::exception& e) {
    RunOutcome out;
    out.code = classify_exception(e);
    out.stage = "load";
    out.message = e.what();
    return out;
  }
}

bool transient(ErrorCode code) {
  return code == ErrorCode::kResourceExhausted || code == ErrorCode::kDeadlineExceeded;
}

/// Journal line for a terminal result.  One complete JSON object per
/// line; resume treats a line without the closing brace (a mid-write
/// crash) as absent.
std::string journal_line(const BatchRunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(result.id);
  json.key("status").value(result.ok ? "ok" : "failed");
  if (!result.ok) {
    json.key("code").value(error_code_name(result.code));
    json.key("stage").value(result.stage);
    json.key("message").value(result.message);
  }
  json.key("attempts").value(result.attempts);
  json.key("elapsed_ms").value(result.elapsed_ms);
  if (result.kernel_fallbacks > 0) json.key("kernel_fallbacks").value(result.kernel_fallbacks);
  json.end_object();
  return json.str();
}

/// Extract `"key":"value"` from a journal line without a JSON parser
/// (this repository only writes JSON).  Journal values we read back (id,
/// status, code) never contain escapes we generate, so a plain scan up to
/// the closing quote is exact for our own output.
std::string journal_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions options) : options_(std::move(options)) {}

std::vector<BatchEntry> BatchRunner::parse_manifest(const std::string& text) {
  std::vector<BatchEntry> entries;
  std::set<std::string> seen;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = strip_comment_and_trim(raw);
    if (line.empty()) continue;
    const std::string where = "manifest line " + std::to_string(line_no);
    const std::vector<std::string> tokens = split_ws(line);
    NSHOT_REQUIRE(tokens.size() >= 2, where + ": expected '<id> <spec> [key=value ...]'");
    BatchEntry entry;
    entry.id = tokens[0];
    entry.spec = tokens[1];
    entry.line = line_no;
    NSHOT_REQUIRE(seen.insert(entry.id).second, where + ": duplicate run id '" + entry.id + "'");
    NSHOT_REQUIRE(starts_with(entry.spec, "bench:") || starts_with(entry.spec, "file:") ||
                      starts_with(entry.spec, "gen:"),
                  where + ": spec '" + entry.spec + "' must be bench:NAME, file:PATH or gen:SEED");
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      NSHOT_REQUIRE(eq != std::string::npos && eq > 0,
                    where + ": expected key=value, got '" + tokens[i] + "'");
      const std::string key = tokens[i].substr(0, eq);
      NSHOT_REQUIRE(known_params().count(key) != 0, where + ": unknown key '" + key + "'");
      entry.params[key] = tokens[i].substr(eq + 1);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string BatchRunner::soak_manifest(int count, std::uint64_t base_seed,
                                       const std::string& extra_params) {
  std::ostringstream out;
  out << "# soak manifest: " << count << " generated circuits, base seed " << base_seed << "\n";
  for (int i = 0; i < count; ++i) {
    out << "gen-" << i << " gen:" << run_seed(base_seed, i);
    if (!extra_params.empty()) out << " " << extra_params;
    out << "\n";
  }
  return out.str();
}

BatchSummary BatchRunner::run(const std::vector<BatchEntry>& entries) {
  BatchSummary summary;
  summary.total = static_cast<int>(entries.size());

  // Resume: a journal line is terminal only when complete (closing brace
  // survived the crash) and carries a status for a known id.
  std::map<std::string, std::string> journaled;  // id -> "ok" | "failed" line
  if (!options_.journal_path.empty()) {
    std::ifstream journal(options_.journal_path);
    std::string line;
    while (journal && std::getline(journal, line)) {
      if (line.empty() || line.back() != '}') continue;  // truncated tail
      const std::string id = journal_field(line, "id");
      if (!id.empty() && !journal_field(line, "status").empty()) journaled[id] = line;
    }
  }

  std::ofstream journal_out;
  if (!options_.journal_path.empty()) {
    journal_out.open(options_.journal_path, std::ios::app);
    NSHOT_REQUIRE(static_cast<bool>(journal_out),
                  "cannot open batch journal " + options_.journal_path);
  }

  for (const BatchEntry& entry : entries) {
    BatchRunResult result;
    result.id = entry.id;

    if (const auto it = journaled.find(entry.id); it != journaled.end()) {
      result.resumed = true;
      result.ok = journal_field(it->second, "status") == "ok";
      if (!result.ok) {
        result.code = error_code_from_name(journal_field(it->second, "code"));
        result.stage = journal_field(it->second, "stage");
        result.message = journal_field(it->second, "message");
      }
      ++summary.resumed;
      (result.ok ? summary.succeeded : summary.failed) += 1;
      if (!result.ok) ++summary.failures_by_code[error_code_name(result.code)];
      summary.runs.push_back(std::move(result));
      continue;
    }

    if (options_.stop_after > 0 && summary.executed >= options_.stop_after) {
      summary.stopped_early = true;
      break;
    }

    const PipelineOptions options = entry_options(options_.pipeline, entry);
    const auto t0 = std::chrono::steady_clock::now();
    RunOutcome outcome;
    for (int attempt = 1;; ++attempt) {
      outcome = attempt_entry(entry, options);
      result.attempts = attempt;
      if (outcome.ok() || !transient(outcome.code) || attempt > options_.max_retries) break;
      ++summary.retries;
      if (options_.backoff_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(options_.backoff_ms * attempt));
    }
    result.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    result.ok = outcome.ok();
    if (result.ok) {
      result.kernel_fallbacks = static_cast<int>(outcome.run->kernel_fallbacks.size());
    } else {
      result.code = outcome.code;
      result.stage = outcome.stage;
      result.message = outcome.message;
    }
    ++summary.executed;
    (result.ok ? summary.succeeded : summary.failed) += 1;
    if (!result.ok) ++summary.failures_by_code[error_code_name(result.code)];
    if (journal_out) journal_out << journal_line(result) << "\n" << std::flush;
    summary.runs.push_back(std::move(result));
  }
  return summary;
}

std::string BatchSummary::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("total").value(total);
  json.key("executed").value(executed);
  json.key("succeeded").value(succeeded);
  json.key("failed").value(failed);
  json.key("resumed").value(resumed);
  json.key("retries").value(retries);
  json.key("stopped_early").value(stopped_early);
  json.key("failures_by_code").begin_object();
  for (const auto& [code, count] : failures_by_code) json.key(code).value(count);
  json.end_object();
  json.key("runs").begin_array();
  for (const BatchRunResult& run : runs) {
    json.begin_object();
    json.key("id").value(run.id);
    json.key("ok").value(run.ok);
    json.key("resumed").value(run.resumed);
    json.key("attempts").value(run.attempts);
    json.key("elapsed_ms").value(run.elapsed_ms);
    json.key("kernel_fallbacks").value(run.kernel_fallbacks);
    if (!run.ok) {
      json.key("code").value(error_code_name(run.code));
      json.key("stage").value(run.stage);
      json.key("message").value(run.message);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace nshot
