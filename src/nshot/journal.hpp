// Crash-safe JSONL run journal, shared by BatchRunner and serve::Server.
//
// One complete JSON object is appended and flushed per terminal run; a
// line without its closing brace (a mid-write crash) is ignored on
// re-read, so resuming a killed batch — or a drained server picking its
// file queue back up — skips exactly the runs that finished.  Both
// drivers write the SAME line format, which is what makes a server
// journal resumable by BatchRunner and vice versa (the serve_test drain
// test asserts this parity).
#pragma once

#include <map>
#include <string>

#include "nshot/batch.hpp"

namespace nshot {

/// Journal line for a terminal result (no trailing newline).
std::string journal_line(const BatchRunResult& result);

/// Extract `"key":"value"` from a journal line without a JSON parser
/// (this repository only writes JSON).  Journal values we read back (id,
/// status, code) never contain escapes we generate, so a plain scan up to
/// the closing quote is exact for our own output.
std::string journal_field(const std::string& line, const std::string& key);

/// Terminal lines of a journal file, keyed by run id.  Truncated tails
/// and lines without an id/status are skipped; a missing file is an
/// empty journal (first invocation).
std::map<std::string, std::string> read_journal(const std::string& path);

/// Decode a terminal journal line back into a (resumed) result.
BatchRunResult journal_result(const std::string& id, const std::string& line);

/// Fold a Response into the journal's record type (attempts defaults to
/// the response's own count; drivers that retry overwrite it).
BatchRunResult batch_result(const Response& response);

}  // namespace nshot
