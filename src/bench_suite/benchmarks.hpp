// The Table 2 benchmark suite (reconstructions — see DESIGN.md §5).
//
// Every entry carries the numbers the paper reports (state count and the
// area/delay of the SIS, SYN and ASSASSIN columns, or the footnote code
// when a tool could not handle the circuit) so the bench harness can print
// paper-vs-measured side by side.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace nshot::bench_suite {

struct BenchmarkInfo {
  std::string name;
  int paper_states = 0;
  // Table 2 columns as printed in the paper ("352/5.2", "(1)", "(2)", ...).
  std::string paper_sis;
  std::string paper_syn;
  std::string paper_assassin;
  bool nondistributive = false;  // second part of Table 2
  bool sg_format = false;        // note (4): given as SG, SIS cannot read it
  std::function<sg::StateGraph()> build;
};

/// All 25 circuits of Table 2, in the paper's order.
const std::vector<BenchmarkInfo>& all_benchmarks();

/// Look up one benchmark by name; throws nshot::Error if unknown.
const BenchmarkInfo& find_benchmark(const std::string& name);

/// Build the state graph of a named benchmark.
sg::StateGraph build_benchmark(const std::string& name);

/// The 15-state read-write core on its own (without the scaling product):
/// an output fires twice per cycle with overlapping excitation-region
/// contexts, so it satisfies CSC without USC and defeats per-region
/// monotonous covers (Table 2 note (2)).  Exposed for tests and examples.
sg::StateGraph build_read_write_core();

}  // namespace nshot::bench_suite
