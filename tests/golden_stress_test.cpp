// Golden-file test for the stress-campaign JSON: the full report —
// margins, fault battery, adversarial search — on two fixed benchmarks is
// pinned byte-for-byte.  Any change to seed derivation, merge order,
// battery enumeration or JSON rendering shows up here as a diff, which is
// exactly the surface the parallel engine must not move.
//
// Regenerate after an INTENDED change with:
//   NSHOT_UPDATE_GOLDEN=1 ./golden_stress_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"

namespace nshot {
namespace {

faults::StressOptions golden_options() {
  faults::StressOptions options;
  options.seed = 424242;
  options.margin_runs = 4;
  options.run.max_transitions = 80;
  options.adversarial.restarts = 2;
  options.adversarial.iterations = 25;
  options.adversarial.run.max_transitions = 80;
  return options;
}

std::string render_report(const std::string& name, int jobs) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::SynthesisResult result = core::synthesize(g);
  faults::StressOptions options = golden_options();
  options.jobs = jobs;
  options.adversarial.jobs = jobs;
  return faults::stress_report_json(faults::run_stress(g, result.circuit, name, options));
}

/// Write `text` to `path`; false when the stream failed (missing parent
/// directory, read-only golden tree, disk full, ...).  The regeneration
/// path must FAIL LOUDLY on a bad write: a silently dropped golden makes
/// the next plain run pass against stale bytes, which is indistinguishable
/// from "nothing changed".
bool write_golden(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << text;
  out.flush();
  return out.good();
}

void compare_with_golden(const std::string& name) {
  const std::string path = std::string(NSHOT_GOLDEN_DIR) + "/stress_" + name + ".json";
  const std::string actual = render_report(name, /*jobs=*/1);

  if (std::getenv("NSHOT_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(write_golden(path, actual))
        << "NSHOT_UPDATE_GOLDEN is set but " << path
        << " could not be written (read-only golden dir?)";
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with NSHOT_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "stress JSON for " << name
      << " diverged from the golden file; if intended, regenerate with NSHOT_UPDATE_GOLDEN=1";

  // The parallel campaign must hit the same bytes.
  EXPECT_EQ(render_report(name, /*jobs=*/8), actual) << name << " diverges at jobs=8";
}

TEST(GoldenStressTest, Chu133) { compare_with_golden("chu133"); }

TEST(GoldenStressTest, Converta) { compare_with_golden("converta"); }

TEST(GoldenStressTest, RegenerationFailureIsDetected) {
  // An unwritable target (nonexistent parent directory — chmod games
  // don't bite when the test runs as root) must report failure, which
  // compare_with_golden turns into a hard ASSERT instead of a silent
  // skip.
  const std::string bad =
      std::string(NSHOT_GOLDEN_DIR) + "/no_such_subdir/stress_bogus.json";
  EXPECT_FALSE(write_golden(bad, "{}"));
  // Sanity: the same helper succeeds against the real golden tree.
  const std::string ok = std::string(NSHOT_GOLDEN_DIR) + "/.write_probe.tmp";
  ASSERT_TRUE(write_golden(ok, "{}"));
  std::remove(ok.c_str());
}

}  // namespace
}  // namespace nshot
