// Robustness-margin instrumentation: how close does a run come to the two
// cliffs the paper's hazard-freedom argument stands on?
//
//  * ω margin (Theorem 1 / Figure 5): every effective excitation pulse of
//    an MHS flip-flop — set & enable_set, reset & enable_reset — is either
//    a genuine excitation (width ≥ ω, fires) or a filtered glitch
//    (width < ω, absorbed).  The MarginProbe mirrors the cell inputs from
//    the simulator's observer stream and records, per cell, the smallest
//    firing excess (width − ω) and the smallest absorption gap (ω − width)
//    seen.  Either hitting zero means a delay assignment one nudge away
//    flips a pulse across the threshold.
//
//  * Eq. 1 margin (Section IV-C): for a concrete per-gate delay vector,
//    the slack of  t_del ≥ t_set0w − t_res1f − t_mhs  (and the symmetric
//    reset term) evaluated with actual longest/shortest settle paths
//    through the SOP cones instead of the level-quantized report model.
//    Negative slack means a trespassing pulse can reach the flip-flop
//    after the opposite transition completes.
#pragma once

#include <array>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "faults/fault_model.hpp"
#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/conformance.hpp"

namespace nshot::sim {
class TrialRunner;  // sim/trial_batch.hpp
}

namespace nshot::faults {

inline constexpr double kNoMargin = std::numeric_limits<double>::infinity();

/// ω-margin statistics of one MHS flip-flop over one (or more) runs.
struct OmegaStats {
  long fired = 0;
  long absorbed = 0;
  double min_fire_slack = kNoMargin;    // min (width − ω) over firing pulses
  double min_absorb_slack = kNoMargin;  // min (ω − width) over absorbed pulses

  void merge(const OmegaStats& other);
  double min_slack() const { return std::min(min_fire_slack, min_absorb_slack); }
};

/// Watches the input rails of every MHS flip-flop of a circuit through the
/// simulator's observer stream and classifies effective-excitation pulses
/// against the threshold ω.  Install with `observer()` (chainable through
/// ClosedLoopConfig::observer) and seed the mirrors with
/// `capture_initial` from ClosedLoopConfig::on_initialized.
class MarginProbe {
 public:
  MarginProbe(const netlist::Netlist& circuit, const gatelib::GateLibrary& lib);

  /// Re-zero the per-run dynamic state (input mirrors, pulse clocks,
  /// statistics) while keeping the structural cell/watch tables, so one
  /// probe can serve a whole chunk of runs without reallocating.
  void reset();

  void capture_initial(const sim::Simulator& sim);
  sim::NetObserver observer();

  int num_cells() const { return static_cast<int>(cells_.size()); }
  netlist::GateId cell_gate(int k) const { return cells_[static_cast<std::size_t>(k)].gate; }
  /// Name of the cell's q net (the observable signal it implements).
  const std::string& cell_signal(int k) const {
    return cells_[static_cast<std::size_t>(k)].signal;
  }
  const OmegaStats& stats(int k) const { return cells_[static_cast<std::size_t>(k)].stats; }

 private:
  struct Cell {
    netlist::GateId gate = -1;
    std::string signal;
    std::array<netlist::NetId, 4> in{};  // set, reset, enable_set, enable_reset
    netlist::NetId q = -1;
    std::array<bool, 4> values{};
    bool q_value = false;
    // Rise time of the current effective excitation pulse (< 0: low), and
    // the q value when it rose (pulses that the cell ignores because the
    // output already holds the target value are not margin-relevant).
    double set_rise = -1.0;
    bool set_rise_q = false;
    double reset_rise = -1.0;
    bool reset_rise_q = false;
    OmegaStats stats;
  };

  void on_change(netlist::NetId net, bool value, double time);
  void edge(Cell& cell, bool set_side, bool level, double time);

  double omega_;
  std::vector<Cell> cells_;
  // Indexed by net: (cell index, slot) pairs; slots 0..3 are cell inputs,
  // 4 is q.  A flat table — on_change runs once per committed net event.
  std::vector<std::vector<std::pair<int, int>>> watch_;
};

/// Eq. 1 slack of one MHS flip-flop under a concrete delay vector.
struct Eq1Margin {
  netlist::GateId mhs = -1;
  std::string signal;
  double t_del_set = 0.0;    // delay line on the enable_set path (0 if none)
  double t_del_reset = 0.0;
  double t_set0_worst = 0.0;  // longest settle path through the set SOP cone
  double t_set1_fast = 0.0;   // shortest propagate path
  double t_res0_worst = 0.0;
  double t_res1_fast = 0.0;
  double slack_set = kNoMargin;    // t_del_set + t_res1f + t_mhs − t_set0w
  double slack_reset = kNoMargin;  // t_del_reset + t_set1f + t_mhs − t_res0w

  double slack() const { return std::min(slack_set, slack_reset); }
};

/// Evaluate the Eq. 1 slack of every MHS flip-flop in `circuit` for the
/// given per-gate delay assignment (one entry per gate, as produced by
/// `materialize_delays` or Simulator::gate_delays).
std::vector<Eq1Margin> eq1_margins(const netlist::Netlist& circuit,
                                   const gatelib::GateLibrary& lib,
                                   const std::vector<double>& delays);

/// Same evaluation using the compiled netlist's O(1) driver table instead
/// of per-net linear scans.
std::vector<Eq1Margin> eq1_margins(const sim::CompiledNetlist& compiled,
                                   const std::vector<double>& delays);

/// Corner-case Eq. 1 requirement of one MHS flip-flop: the compensation
/// t_del must cover the library WORST corner (excited cone all-slow,
/// opposing cone all-fast), matching the synthesis-time model of
/// nshot/delay_requirement.hpp but evaluated on the concrete netlist.
/// `required > installed` means the circuit is under-compensated: a delay
/// assignment inside the search bounds can trespass.
struct Eq1Requirement {
  netlist::GateId mhs = -1;
  std::string signal;
  double required_set = 0.0;  // t_set0w(hi) − t_res1f(lo) − t_mhs
  double required_reset = 0.0;
  double installed_set = 0.0;  // delay line actually on the enable path
  double installed_reset = 0.0;

  bool under_compensated() const {
    return required_set > installed_set || required_reset > installed_reset;
  }
};

std::vector<Eq1Requirement> eq1_requirements(const netlist::Netlist& circuit,
                                             const gatelib::GateLibrary& lib);

/// One scenario run with full margin instrumentation attached.
struct ProbedRun {
  sim::ConformanceReport report;
  std::vector<OmegaStats> omega;  // per MHS cell, MarginProbe order
  std::vector<Eq1Margin> eq1;     // per MHS cell, netlist order
  /// The smallest margin observed anywhere in the run (ω slacks and Eq. 1
  /// slacks); kNoMargin when the circuit has no MHS cells or nothing
  /// pulsed.  The adversarial search minimizes this.
  double min_slack = kNoMargin;
};

ProbedRun run_probed(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                     const FaultScenario& scenario, const ScenarioOptions& options);

/// Hot-path variant over a pre-compiled netlist and pre-resolved binding;
/// `reuse` (optional, built from `compiled`) is reset and reused for the
/// run.  Byte-identical to the uncompiled overload.
ProbedRun run_probed(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                     const sim::CompiledNetlist& compiled, const FaultScenario& scenario,
                     const ScenarioOptions& options, sim::Simulator* reuse = nullptr);

/// Batched-engine variant: the scenario runs on `runner`'s calendar-queue
/// simulator (sim/trial_batch.hpp) against runner.compiled().  `probe`
/// (optional) is reset and reused instead of constructing a MarginProbe
/// per run.  Byte-identical to both overloads above.
ProbedRun run_probed(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                     const FaultScenario& scenario, const ScenarioOptions& options,
                     sim::TrialRunner& runner, MarginProbe* probe = nullptr);

}  // namespace nshot::faults
