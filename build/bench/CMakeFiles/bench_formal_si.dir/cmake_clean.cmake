file(REMOVE_RECURSE
  "CMakeFiles/bench_formal_si.dir/bench_formal_si.cpp.o"
  "CMakeFiles/bench_formal_si.dir/bench_formal_si.cpp.o.d"
  "bench_formal_si"
  "bench_formal_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formal_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
