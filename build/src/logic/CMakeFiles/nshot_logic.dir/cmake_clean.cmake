file(REMOVE_RECURSE
  "CMakeFiles/nshot_logic.dir/cover.cpp.o"
  "CMakeFiles/nshot_logic.dir/cover.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/cube.cpp.o"
  "CMakeFiles/nshot_logic.dir/cube.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/espresso.cpp.o"
  "CMakeFiles/nshot_logic.dir/espresso.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/exact.cpp.o"
  "CMakeFiles/nshot_logic.dir/exact.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/pla.cpp.o"
  "CMakeFiles/nshot_logic.dir/pla.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/spec.cpp.o"
  "CMakeFiles/nshot_logic.dir/spec.cpp.o.d"
  "CMakeFiles/nshot_logic.dir/verify.cpp.o"
  "CMakeFiles/nshot_logic.dir/verify.cpp.o.d"
  "libnshot_logic.a"
  "libnshot_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
