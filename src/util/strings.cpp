#include "util/strings.hpp"

#include <cctype>

namespace nshot {

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string strip_comment_and_trim(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::size_t begin = 0;
  while (begin < line.size() && std::isspace(static_cast<unsigned char>(line[begin]))) ++begin;
  std::size_t end = line.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(line[end - 1]))) --end;
  return std::string(line.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace nshot
