// Queue-scaling ladder: where the calendar queue's O(1) pop overtakes the
// binary heap's O(log n).
//
// The Table-2 controllers keep only a handful of pending events, so
// bench_kernels cannot show the calendar queue doing what it was built
// for.  This harness manufactures the missing regime: a synthesized
// random_semimodular_g circuit is replicated R times into one netlist of
// disjoint copies, every copy's primary inputs are toggled on a staggered
// schedule, and randomized per-gate delays desynchronize the copies — so
// the pending-event population scales with R (tens at R=1, thousands at
// R=256) while the workload stays a pure function of the seed.
//
// For each population tier the SAME preloaded schedule runs on the binary
// heap, the calendar queue, and the adaptive engine (heap below the
// migration threshold, calendar above it).  The (time, seq) total-order
// pop contract makes all three runs byte-identical — asserted via a
// fingerprint over events processed, final simulated time, per-net values
// and toggle counts — so the recorded events/sec compare engines and
// nothing else.  The smallest tier where the calendar beats the heap is
// the crossover; BENCH_queue_scaling.json records it alongside per-tier
// events/sec and the sampled pending-population statistics, and
// tools/bench_gate.py gates the calendar_over_heap / adaptive_over_heap
// ratios per tier.
//
// `--smoke` shrinks the ladder and budgets for CI; the JSON records the
// flag so smoke numbers are never mistaken for measurements.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "netlist/netlist.hpp"
#include "nshot/synthesis.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/conformance.hpp"
#include "sim/event_sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace nshot;
using Clock = std::chrono::steady_clock;

constexpr double kInf = std::numeric_limits<double>::infinity();

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Min-of-N wall-clock filter (same discipline as bench_kernels: legs
/// under comparison interleave their samples so a load spike lands on all
/// of them).
struct MinTimer {
  double best = 0.0;
  int n = 0;
  template <typename Body>
  void sample(Body&& body) {
    const auto t0 = Clock::now();
    body();
    const double ms = ms_since(t0);
    if (n++ == 0 || ms < best) best = ms;
  }
};

/// The seed workload: one implementable random semimodular circuit plus
/// the initial net values of its SG initial state.
struct BaseCircuit {
  netlist::Netlist circuit;
  std::vector<std::pair<netlist::NetId, bool>> initial_values;
  std::uint64_t seed = 0;
};

/// First seed >= 1 whose random STG synthesizes into a circuit with at
/// least `min_gates` gates.  Not every draw is implementable (CSC can
/// fail); rejections are part of the generator's contract, so they are
/// skipped, not reported.
BaseCircuit find_base_circuit(int min_gates) {
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    bench_suite::RandomStgOptions gen;
    gen.seed = seed;
    try {
      const sg::StateGraph g = bench_suite::build_g(bench_suite::random_semimodular_g(gen));
      core::SynthesisResult result = core::synthesize(g);
      if (result.circuit.num_gates() < min_gates) continue;
      BaseCircuit base;
      base.initial_values = sim::initial_net_values(g, result.circuit);
      base.circuit = std::move(result.circuit);
      base.seed = seed;
      return base;
    } catch (const std::exception&) {
      continue;  // unimplementable draw — try the next seed
    }
  }
  throw Error(ErrorCode::kUnimplementable,
              "bench_queue_scaling: no implementable random circuit in 500 seeds");
}

/// One scheduled primary-input change, shared verbatim by every engine of
/// a tier.
struct InputToggle {
  netlist::NetId net = -1;
  bool value = false;
  double time = 0.0;
};

/// `copies` disjoint renamed instances of the base circuit in one
/// netlist, plus the concatenated initial values and the staggered
/// open-loop toggle schedule that drives them.
struct Ladder {
  netlist::Netlist circuit;
  std::vector<std::pair<netlist::NetId, bool>> initial_values;
  std::vector<InputToggle> schedule;
};

Ladder replicate(const BaseCircuit& base, int copies) {
  Ladder ladder;
  ladder.circuit = netlist::Netlist("ladder-x" + std::to_string(copies));
  // Initial value per base net, for toggling inputs away from rest.
  std::vector<std::uint8_t> base_init(static_cast<std::size_t>(base.circuit.num_nets()), 0);
  for (const auto& [net, value] : base.initial_values)
    base_init[static_cast<std::size_t>(net)] = value ? 1 : 0;

  // The stagger keeps copies out of lockstep even before the randomized
  // delays separate them; twelve toggle rounds (out and back, six times)
  // keep every copy active long enough for the populations to overlap and
  // give every tier a timed region well clear of timer noise.
  Rng jitter(0xC0FFEEULL);
  constexpr int kRounds = 12;
  constexpr double kRoundGap = 40.0;

  for (int k = 0; k < copies; ++k) {
    const std::string prefix = "c" + std::to_string(k) + "__";
    std::vector<netlist::NetId> net_map(static_cast<std::size_t>(base.circuit.num_nets()));
    for (netlist::NetId n = 0; n < base.circuit.num_nets(); ++n)
      net_map[static_cast<std::size_t>(n)] =
          ladder.circuit.add_net(prefix + base.circuit.net_name(n));
    for (const netlist::Gate& gate : base.circuit.gates()) {
      netlist::Gate copy = gate;
      copy.name = prefix + gate.name;
      for (netlist::NetId& in : copy.inputs) in = net_map[static_cast<std::size_t>(in)];
      for (netlist::NetId& out : copy.outputs) out = net_map[static_cast<std::size_t>(out)];
      ladder.circuit.add_gate(std::move(copy));
    }
    for (const netlist::NetId pi : base.circuit.primary_inputs())
      ladder.circuit.add_primary_input(net_map[static_cast<std::size_t>(pi)]);
    for (const netlist::NetId po : base.circuit.primary_outputs())
      ladder.circuit.add_primary_output(net_map[static_cast<std::size_t>(po)]);
    for (const auto& [net, value] : base.initial_values)
      ladder.initial_values.emplace_back(net_map[static_cast<std::size_t>(net)], value);

    int input_index = 0;
    for (const netlist::NetId pi : base.circuit.primary_inputs()) {
      const bool rest = base_init[static_cast<std::size_t>(pi)] != 0;
      for (int round = 0; round < kRounds; ++round) {
        InputToggle toggle;
        toggle.net = net_map[static_cast<std::size_t>(pi)];
        toggle.value = (round % 2 == 0) ? !rest : rest;
        toggle.time = 1.0 + static_cast<double>(round) * kRoundGap +
                      static_cast<double>(input_index) * 3.0 + jitter.next_double(0.0, 2.0);
        ladder.schedule.push_back(toggle);
        ++input_index;
      }
    }
  }
  ladder.circuit.check_well_formed();
  return ladder;
}

/// reset + initialize + preload the tier's schedule (untimed setup).
void arm(sim::Simulator& simulator, const Ladder& ladder, std::uint64_t max_events) {
  sim::SimulatorOptions options;
  options.seed = 71;
  options.randomize_delays = true;
  options.max_events = max_events;
  simulator.reset(options);
  simulator.initialize(ladder.initial_values);
  for (const InputToggle& toggle : ladder.schedule)
    simulator.set_input(toggle.net, toggle.value, toggle.time);
}

/// The timed region: the fused event walk, no observable nets, run to
/// quiescence or the event budget.
void drain(sim::Simulator& simulator, const std::vector<int>& no_observables) {
  while (true) {
    const sim::Simulator::BurstResult r =
        simulator.run_burst(no_observables.data(), kInf, kInf, nullptr);
    if (r.stop != sim::Simulator::BurstStop::kObservable) return;
  }
}

/// Everything the (time, seq) pop contract promises is engine-invariant.
std::string fingerprint(const sim::Simulator& simulator) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a over values + toggles
  auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  const netlist::Netlist& circuit = simulator.circuit();
  for (netlist::NetId n = 0; n < circuit.num_nets(); ++n) {
    mix(simulator.value(n) ? 2 : 1);
    mix(static_cast<std::uint64_t>(simulator.toggle_count(n)));
  }
  std::ostringstream out;
  out << simulator.events_processed() << '/' << simulator.now() << '/'
      << simulator.budget_exhausted() << '/' << hash;
  return out.str();
}

struct EngineResult {
  double ms = 0.0;
  std::uint64_t events = 0;
  std::string fp;
  double events_per_sec() const { return ms > 0 ? static_cast<double>(events) / (ms / 1e3) : 0; }
};

struct TierResult {
  std::string name;
  int copies = 0;
  int gates = 0, nets = 0;
  std::size_t peak_pending = 0;
  double mean_pending = 0.0;
  EngineResult heap, calendar, adaptive;
  bool identical = false;
  double calendar_over_heap() const {
    return heap.ms > 0 ? heap.ms / std::max(calendar.ms, 1e-9) : 0;
  }
  double adaptive_over_heap() const {
    return heap.ms > 0 ? heap.ms / std::max(adaptive.ms, 1e-9) : 0;
  }
};

TierResult measure_tier(const BaseCircuit& base, int copies, std::uint64_t max_events,
                        int reps) {
  const Ladder ladder = replicate(base, copies);
  const sim::CompiledNetlist compiled(ladder.circuit, gatelib::GateLibrary::standard());
  const std::vector<int> no_observables(static_cast<std::size_t>(ladder.circuit.num_nets()), -1);

  TierResult tier;
  tier.name = "x" + std::to_string(copies);
  tier.copies = copies;
  tier.gates = ladder.circuit.num_gates();
  tier.nets = ladder.circuit.num_nets();

  sim::Simulator heap_sim(compiled, sim::SimulatorOptions{}, sim::QueueKind::kBinaryHeap);
  sim::Simulator cal_sim(compiled, sim::SimulatorOptions{}, sim::QueueKind::kCalendar);
  sim::Simulator ada_sim(compiled, sim::SimulatorOptions{}, sim::QueueKind::kAdaptive);

  // Untimed population pre-pass: slice the identical run by simulated
  // time and sample the pending set between slices.  The population
  // trajectory is engine-invariant, so one engine measures it for all.
  {
    arm(heap_sim, ladder, max_events);
    double total = 0.0;
    std::size_t samples = 0;
    for (int slice = 0; slice < 100000; ++slice) {
      const sim::Simulator::BurstResult r = heap_sim.run_burst(
          no_observables.data(), kInf, heap_sim.now() + 2.0, nullptr);
      const std::size_t pending = heap_sim.pending_events();
      tier.peak_pending = std::max(tier.peak_pending, pending);
      total += static_cast<double>(pending);
      ++samples;
      if (r.stop == sim::Simulator::BurstStop::kQuiesced ||
          r.stop == sim::Simulator::BurstStop::kBudget)
        break;
    }
    tier.mean_pending = samples > 0 ? total / static_cast<double>(samples) : 0.0;
  }

  MinTimer heap_t, cal_t, ada_t;
  for (int i = 0; i < reps; ++i) {
    arm(heap_sim, ladder, max_events);
    heap_t.sample([&] { drain(heap_sim, no_observables); });
    arm(cal_sim, ladder, max_events);
    cal_t.sample([&] { drain(cal_sim, no_observables); });
    arm(ada_sim, ladder, max_events);
    ada_t.sample([&] { drain(ada_sim, no_observables); });
  }
  tier.heap = {heap_t.best, heap_sim.events_processed(), fingerprint(heap_sim)};
  tier.calendar = {cal_t.best, cal_sim.events_processed(), fingerprint(cal_sim)};
  tier.adaptive = {ada_t.best, ada_sim.events_processed(), fingerprint(ada_sim)};
  tier.identical = tier.heap.fp == tier.calendar.fp && tier.heap.fp == tier.adaptive.fp;
  return tier;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_queue_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }

  const BaseCircuit base = find_base_circuit(/*min_gates=*/10);
  std::printf("Queue scaling: base circuit seed %llu (%d gates, %d nets)%s\n\n",
              static_cast<unsigned long long>(base.seed), base.circuit.num_gates(),
              base.circuit.num_nets(), smoke ? " (smoke)" : "");

  // Smoke tiers are a subset of the full ladder so bench_gate.py can
  // match them by name against the committed full run.
  const std::vector<int> tiers_wanted = smoke ? std::vector<int>{1, 16}
                                              : std::vector<int>{1, 4, 16, 64, 256};
  const int reps = smoke ? 1 : 5;

  std::printf("%-6s %8s %8s %9s %9s %11s %11s %11s %8s %8s %5s\n", "tier", "gates",
              "peak", "mean", "events", "heap ev/s", "cal ev/s", "adapt ev/s", "cal x",
              "adapt x", "same");

  bool all_identical = true;
  int crossover_copies = -1;
  std::vector<TierResult> tiers;
  for (const int copies : tiers_wanted) {
    // Budget scales with the tier so big tiers cannot run away, while
    // small tiers still quiesce naturally.
    const std::uint64_t budget =
        smoke ? 30000 : std::min<std::uint64_t>(3000000, 60000ULL * static_cast<unsigned>(copies));
    const TierResult tier = measure_tier(base, copies, budget, reps);
    NSHOT_REQUIRE(tier.identical, "queue engines diverged on tier " + tier.name);
    all_identical &= tier.identical;
    if (crossover_copies < 0 && tier.calendar_over_heap() > 1.0) crossover_copies = copies;
    std::printf("%-6s %8d %8zu %9.1f %9llu %11.0f %11.0f %11.0f %7.2fx %7.2fx %5s\n",
                tier.name.c_str(), tier.gates, tier.peak_pending, tier.mean_pending,
                static_cast<unsigned long long>(tier.heap.events), tier.heap.events_per_sec(),
                tier.calendar.events_per_sec(), tier.adaptive.events_per_sec(),
                tier.calendar_over_heap(), tier.adaptive_over_heap(),
                tier.identical ? "yes" : "NO");
    tiers.push_back(tier);
  }

  if (crossover_copies > 0)
    std::printf("\ncalendar overtakes heap at %d copies\n", crossover_copies);
  else
    std::printf("\ncalendar never overtook heap on this ladder\n");

  std::ostringstream json;
  json << "{\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"byte_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"base_seed\": " << base.seed
       << ",\n  \"crossover_copies\": " << crossover_copies << ",\n  \"tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierResult& t = tiers[i];
    json << "    {\"name\": \"" << t.name << "\", \"copies\": " << t.copies
         << ", \"gates\": " << t.gates << ", \"nets\": " << t.nets
         << ", \"peak_pending\": " << t.peak_pending << ", \"mean_pending\": " << t.mean_pending
         << ", \"events\": " << t.heap.events << ", \"heap_ms\": " << t.heap.ms
         << ", \"heap_events_per_sec\": " << t.heap.events_per_sec()
         << ", \"calendar_ms\": " << t.calendar.ms
         << ", \"calendar_events_per_sec\": " << t.calendar.events_per_sec()
         << ", \"adaptive_ms\": " << t.adaptive.ms
         << ", \"adaptive_events_per_sec\": " << t.adaptive.events_per_sec()
         << ", \"calendar_over_heap\": " << t.calendar_over_heap()
         << ", \"adaptive_over_heap\": " << t.adaptive_over_heap() << "}"
         << (i + 1 < tiers.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path);
  return 0;
}
