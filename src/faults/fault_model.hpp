// Explicit fault models for stress-testing synthesized netlists (the
// regimes the paper's robustness claim quantifies over, pushed past their
// margins on purpose):
//
//  * stuck-at-0/1 on a chosen net — a broken wire or dead transistor; on
//    an acknowledgement (enable) rail this starves or floods the MHS
//    flip-flop's effective excitations;
//  * glitch pulses injected on SOP nets with widths swept around the MHS
//    threshold ω — sub-threshold pulses must be absorbed (Figure 5),
//    super-threshold pulses fire the flip-flop and, when the specification
//    does not enable the transition, surface as an external hazard;
//  * per-gate delay outliers pushed beyond the library [min, max] interval
//    — a marginal cell slower or faster than its characterization;
//  * delay-line shaving — t_del under-compensation that removes the Eq. 1
//    slack the acknowledgement scheme relies on (Section IV-C).
//
// A FaultScenario bundles one delay assignment with a set of faults; it is
// the unit the adversarial search perturbs and the counterexample
// minimizer shrinks.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"

namespace nshot::sim {
class VcdRecorder;
class TrialRunner;  // sim/trial_batch.hpp
}

namespace nshot::faults {

enum class FaultKind {
  kStuckAt,       // pin `net` to `value` for the whole run
  kGlitch,        // force `net` to `value` at `time`, release after `width`
  kDelayOutlier,  // set gate `gate`'s delay to `delay` (outside the library interval)
  kDelayShave,    // set delay line `gate`'s delay to `delay` (< the Eq. 1 requirement)
};

const char* fault_kind_name(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kStuckAt;
  netlist::NetId net = -1;    // kStuckAt / kGlitch target
  netlist::GateId gate = -1;  // kDelayOutlier / kDelayShave target
  bool value = false;         // forced value (stuck-at level, glitch polarity)
  double time = 0.0;          // glitch start time
  double width = 0.0;         // glitch width
  double delay = 0.0;         // overridden delay
};

std::string describe_fault(const Fault& fault, const netlist::Netlist& circuit);

/// One fully specified perturbed run.  An empty `delays` vector means the
/// per-gate delays are sampled from `seed` exactly like a conformance
/// sweep run; a non-empty vector pins them (one entry per gate).  `seed`
/// always drives the environment stream.
struct FaultScenario {
  std::uint64_t seed = 1;
  std::vector<double> delays;
  std::vector<Fault> faults;
};

/// Closed-loop run parameters shared by every fault-harness evaluation.
struct ScenarioOptions {
  int max_transitions = 200;
  double input_delay_min = 0.1;
  double input_delay_max = 12.0;
  double time_limit = 1e6;
  /// Faulty circuits can oscillate; the budget converts unbounded event
  /// queues into a structured kEventBudget violation.
  std::uint64_t max_events = 2'000'000;
};

/// Lower a scenario onto a closed-loop run configuration (forces, timed
/// injections, delay overrides, event budget).  Callers may still attach
/// observers/probes to the returned config before running it.
sim::ClosedLoopConfig to_config(const FaultScenario& scenario, const ScenarioOptions& options);

/// Run one scenario of `circuit` against `spec`.
sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options,
                                    sim::VcdRecorder* recorder = nullptr);

/// Hot-path variant over a pre-compiled netlist and pre-resolved binding;
/// `reuse` (optional, built from `compiled`) is reset and reused for the
/// run.  Byte-identical to the uncompiled overload.
sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                                    const sim::CompiledNetlist& compiled,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options,
                                    sim::VcdRecorder* recorder = nullptr,
                                    sim::Simulator* reuse = nullptr);

/// Batched-engine variant: the scenario runs on `runner`'s calendar-queue
/// simulator (sim/trial_batch.hpp) against runner.compiled().
/// Byte-identical to both overloads above.
sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options, sim::TrialRunner& runner,
                                    sim::VcdRecorder* recorder = nullptr);

/// The per-gate delay assignment `scenario` denotes, materialized: the
/// explicit vector if given (else the seed-sampled one), with the delay
/// faults applied on top.  Matches what the simulator will use gate by
/// gate.
std::vector<double> materialize_delays(const netlist::Netlist& circuit,
                                       const FaultScenario& scenario);

/// Same, drawing from the compiled netlist's precomputed DelaySpace.
std::vector<double> materialize_delays(const sim::CompiledNetlist& compiled,
                                       const FaultScenario& scenario);

/// Under-compensation variant: every delay line's instance delay zeroed
/// (t_del = 0 even where Eq. 1 computed a positive requirement).
netlist::Netlist strip_delay_compensation(const netlist::Netlist& circuit);

/// Under-compensation variant for circuits that never needed a delay line:
/// deepen the set SOP of `signal` with a buffer chain of `levels` gates.
/// Eq. 1 for the deepened netlist requires t_del > 0, but no compensation
/// is inserted — trespassing set pulses become reachable once gate delays
/// drift past the library interval.
netlist::Netlist deepen_set_path(const netlist::Netlist& circuit, const std::string& signal,
                                 int levels);

}  // namespace nshot::faults
