// The unified Request/Response surface of nshot::Pipeline: spec
// resolution (bench:/file:/gen:, inline .g text, pre-built graphs),
// per-request option layering, and the deterministic JSON payload every
// driver (BatchRunner, the serve protocol, the examples) renders the same
// way.  This file is the one place a "request" is interpreted; the batch
// manifest parser and the wire protocol both delegate here.
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "nshot/pipeline.hpp"
#include "stg/sg_format.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace nshot {

namespace {

bool parse_flag(const std::string& value) { return !value.empty() && value != "0"; }

/// Apply the request's kind to the stage toggles.  The kind names the
/// largest stage that runs; overrides (applied after) can still re-enable
/// a later stage on a narrower kind.
void apply_kind(PipelineOptions& options, const std::string& kind) {
  if (kind.empty()) return;  // inherit the base toggles
  if (kind == "synthesis") {
    options.verify_conformance = false;
    options.stress_test = false;
  } else if (kind == "conformance") {
    options.verify_conformance = true;
    options.stress_test = false;
  } else if (kind == "stress") {
    options.verify_conformance = true;
    options.stress_test = true;
  } else {
    throw Error(ErrorCode::kInputInvalid,
                "unknown request kind '" + kind +
                    "' (expected synthesis, conformance or stress)");
  }
}

void apply_override(PipelineOptions& options, const std::string& key, const std::string& value) {
  if (key == "seed")
    options.run.seed = static_cast<std::uint64_t>(
        parse_long(value, 0, std::numeric_limits<long>::max(), "seed"));
  else if (key == "jobs")
    options.run.jobs = parse_int(value, 0, 4096, "jobs");
  else if (key == "grain")
    options.run.grain = parse_int(value, 0, 1'000'000, "grain");
  else if (key == "runs")
    options.conformance.runs = parse_int(value, 0, 1'000'000, "runs");
  else if (key == "deadline_ms")
    options.run.deadline_ms = parse_double(value, 0, 1e9, "deadline_ms");
  else if (key == "stage_deadline_ms")
    options.run.stage_deadline_ms = parse_double(value, 0, 1e9, "stage_deadline_ms");
  else if (key == "verify_kernels")
    options.run.verify_kernels = parse_flag(value);
  else if (key == "reference_kernels")
    options.run.reference_kernels = parse_flag(value);
  else if (key == "stress")
    options.stress_test = parse_flag(value);
  else if (key == "exact")
    options.synthesis.exact = parse_flag(value);
  else
    throw Error(ErrorCode::kInputInvalid, "unknown override key '" + key + "'");
}

}  // namespace

const std::set<std::string>& Request::known_override_keys() {
  static const std::set<std::string> keys = {
      "seed",        "jobs",     "grain",           "runs",
      "deadline_ms", "stage_deadline_ms", "verify_kernels", "reference_kernels",
      "stress",      "exact"};
  return keys;
}

PipelineOptions request_options(const PipelineOptions& base, const Request& request) {
  PipelineOptions options = base;
  apply_kind(options, request.kind);
  for (const auto& [key, value] : request.overrides) apply_override(options, key, value);
  // Re-fan the (possibly overridden) shared RunConfig into every stage
  // struct, exactly as the Pipeline constructor does for the base options.
  options.synthesis.apply_run_config(options.run);
  options.conformance.apply_run_config(options.run);
  options.stress.apply_run_config(options.run);
  options.stress.adversarial.apply_run_config(options.run);
  return options;
}

Response Pipeline::submit(const Request& request) {
  Response response;
  response.id = request.id;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const auto work = [&] {
      const PipelineOptions effective = request_options(options_, request);

      const int spec_forms = (request.spec.empty() ? 0 : 1) + (request.g_text.empty() ? 0 : 1) +
                             (request.graph ? 1 : 0);
      NSHOT_REQUIRE(spec_forms == 1,
                    "request must carry exactly one of spec, g_text or graph (got " +
                        std::to_string(spec_forms) + ")");

      if (request.graph) {
        response.outcome = run_with(effective, request.graph.get(), nullptr);
      } else if (!request.g_text.empty()) {
        response.outcome = run_with(effective, nullptr, &request.g_text);
      } else if (starts_with(request.spec, "bench:")) {
        const sg::StateGraph graph = bench_suite::build_benchmark(request.spec.substr(6));
        response.outcome = run_with(effective, &graph, nullptr);
      } else if (starts_with(request.spec, "gen:")) {
        bench_suite::RandomStgOptions gen;
        gen.seed = static_cast<std::uint64_t>(parse_long(
            request.spec.substr(4), 0, std::numeric_limits<long>::max(), "gen seed"));
        const std::string g_text = bench_suite::random_semimodular_g(gen);
        response.outcome = run_with(effective, nullptr, &g_text);
      } else if (starts_with(request.spec, "file:")) {
        const std::string path = request.spec.substr(5);
        std::ifstream stream(path);
        NSHOT_REQUIRE(static_cast<bool>(stream), "cannot open " + path);
        std::stringstream buffer;
        buffer << stream.rdbuf();
        const bool is_sg = path.size() >= 3 && path.compare(path.size() - 3, 3, ".sg") == 0;
        if (is_sg) {
          const sg::StateGraph graph = stg::parse_sg(buffer.str());
          response.outcome = run_with(effective, &graph, nullptr);
        } else {
          const std::string g_text = buffer.str();
          response.outcome = run_with(effective, nullptr, &g_text);
        }
      } else {
        throw Error(ErrorCode::kInputInvalid,
                    "spec '" + request.spec + "' must be bench:NAME, file:PATH or gen:SEED");
      }
    };
    if (request.id.empty())
      work();
    else
      with_error_context("request " + request.id, work);
  } catch (const Error& e) {
    // Everything thrown before run_with took over is a resolution
    // problem: classify it under the synthetic "load" stage, exactly as
    // BatchRunner always reported bad specs.
    response.outcome.code = e.code();
    response.outcome.stage = "load";
    response.outcome.message = e.what();
    response.outcome.exception = std::current_exception();
  } catch (const std::exception& e) {
    response.outcome.code = classify_exception(e);
    response.outcome.stage = "load";
    response.outcome.message = e.what();
    response.outcome.exception = std::current_exception();
  }
  response.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  return response;
}

namespace {

/// The deterministic body shared by payload_json and to_json.  Every
/// field here is a pure function of (spec, effective options): counts,
/// slacks and simulated time — never wall-clock measurements, so payloads
/// are byte-comparable across serial/concurrent and cold/warm runs.
void render_payload(JsonWriter& json, const Response& response) {
  const RunOutcome& outcome = response.outcome;
  json.key("id").value(response.id);
  json.key("ok").value(outcome.ok());
  json.key("stages_completed").begin_array();
  for (const std::string& stage : outcome.stages_completed) json.value(stage);
  json.end_array();
  if (outcome.ok()) {
    const PipelineRun& run = *outcome.run;
    json.key("benchmark").value(run.benchmark);
    json.key("clean").value(run.ok());
    json.key("kernel_fallbacks").value(static_cast<int>(run.kernel_fallbacks.size()));
    json.key("synthesis").begin_object();
    json.key("area").value(run.synthesis.stats.area);
    json.key("delay").value(run.synthesis.stats.delay);
    json.key("gates").value(run.synthesis.stats.gate_count);
    json.key("literals").value(run.synthesis.stats.literal_count);
    json.key("cubes").value(static_cast<int>(run.synthesis.cover.size()));
    json.key("single_traversal").value(run.synthesis.single_traversal);
    json.key("delay_compensation").value(run.synthesis.delay_compensation_used);
    json.end_object();
    if (run.conformance_ran) {
      json.key("conformance").begin_object();
      json.key("runs").value(run.conformance.runs);
      json.key("external_transitions").value(run.conformance.external_transitions);
      json.key("internal_toggles").value(run.conformance.internal_toggles);
      json.key("absorbed_pulses").value(run.conformance.absorbed_pulses);
      json.key("simulated_time").value(run.conformance.simulated_time);
      json.key("deadlocks").value(run.conformance.deadlocks);
      json.key("budget_exhausted").value(run.conformance.budget_exhausted);
      json.key("violations").value(static_cast<int>(run.conformance.violations.size()));
      json.end_object();
    }
    if (run.stress_ran) {
      int survived = 0;
      for (const auto& fault : run.stress.outcomes) survived += fault.survived ? 1 : 0;
      json.key("stress").begin_object();
      json.key("margin_runs").value(run.stress.margin_runs);
      json.key("faults").value(static_cast<int>(run.stress.outcomes.size()));
      json.key("survived").value(survived);
      json.key("min_omega_slack").value(run.stress.min_omega_slack);  // null when unmeasured
      json.key("min_eq1_slack").value(run.stress.min_eq1_slack);
      json.key("baseline_clean").value(run.stress.baseline_clean);
      json.key("adversarial_ran").value(run.stress.adversarial_ran);
      json.end_object();
    }
  } else {
    json.key("error").begin_object();
    json.key("code").value(error_code_name(outcome.code));
    json.key("stage").value(outcome.stage);
    json.key("message").value(outcome.message);
    json.end_object();
  }
}

}  // namespace

std::string Response::payload_json() const {
  JsonWriter json;
  json.begin_object();
  render_payload(json, *this);
  json.end_object();
  return json.str();
}

std::string Response::to_json() const {
  JsonWriter json;
  json.begin_object();
  render_payload(json, *this);
  json.key("elapsed_ms").value(elapsed_ms);
  json.key("attempts").value(attempts);
  json.end_object();
  return json.str();
}

}  // namespace nshot
