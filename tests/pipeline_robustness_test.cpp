// Pipeline robustness tests: run_checked's classified RunOutcome on both
// the happy and failure paths, the RunConfig deadline knobs surfacing as
// clean deadline-exceeded outcomes, and the graceful kernel-mismatch
// degradation (verify_kernels divergence -> reference-kernel retry,
// recorded in PipelineRun::kernel_fallbacks and the obs counters).
#include <gtest/gtest.h>

#include <string>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "nshot/pipeline.hpp"
#include "obs/obs.hpp"
#include "sim/conformance.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

// A trivially-synthesizable three-signal cycle (same shape as the stg_test
// fixture) so the happy-path tests stay fast.
const char* kXyzG = R"(
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
)";

PipelineOptions quiet_options() {
  PipelineOptions options;
  options.collect_observability = false;
  options.conformance.runs = 4;
  return options;
}

// Restores kernel-fault injection even when a test body throws.
struct FaultInjectionGuard {
  explicit FaultInjectionGuard(bool enabled) { sim::testing::set_kernel_fault_injection(enabled); }
  ~FaultInjectionGuard() { sim::testing::set_kernel_fault_injection(false); }
};

// ---------------------------------------------------------------------------
// run_checked classification
// ---------------------------------------------------------------------------

TEST(RunCheckedTest, CompletesAndRecordsEveryStage) {
  Pipeline pipeline(quiet_options());
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  ASSERT_TRUE(outcome.ok()) << outcome.message;
  EXPECT_TRUE(outcome.run->conformance_ran);
  EXPECT_TRUE(outcome.run->ok());
  EXPECT_TRUE(outcome.run->kernel_fallbacks.empty());
  const std::vector<std::string> expected = {"parse", "reachability", "synthesize", "conformance"};
  EXPECT_EQ(outcome.stages_completed, expected);
}

TEST(RunCheckedTest, MalformedGTextIsInputInvalidAtParse) {
  Pipeline pipeline(quiet_options());
  const RunOutcome outcome = pipeline.run_checked_g(".model broken\n.inputs a a\n.end\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.code, ErrorCode::kInputInvalid);
  EXPECT_EQ(outcome.stage, "parse");
  EXPECT_TRUE(outcome.stages_completed.empty());
  // The message carries the stage context and the line diagnostic.
  EXPECT_NE(outcome.message.find("stage parse"), std::string::npos) << outcome.message;
  EXPECT_NE(outcome.message.find("line 2"), std::string::npos) << outcome.message;
}

TEST(RunCheckedTest, NeverThrowsAcrossAGeneratedSweep) {
  // Every generated circuit must come back classified: ok, or a clean
  // taxonomy code with the failing stage named — never an escaping
  // exception (this is the unit-sized version of the soak campaign).
  Pipeline pipeline(quiet_options());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    bench_suite::RandomStgOptions gen;
    gen.seed = seed;
    const RunOutcome outcome = pipeline.run_checked_g(bench_suite::random_semimodular_g(gen));
    if (!outcome.ok()) {
      EXPECT_NE(outcome.code, ErrorCode::kInternal)
          << "seed " << seed << ": " << outcome.message;
      EXPECT_FALSE(outcome.stage.empty()) << "seed " << seed;
      EXPECT_FALSE(outcome.message.empty()) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(RunCheckedTest, ExhaustedRunBudgetIsDeadlineExceeded) {
  PipelineOptions options = quiet_options();
  // A budget this small is spent before the first stage's pre-check, so
  // the outcome is deterministic regardless of host speed.
  options.run.deadline_ms = 1e-6;
  Pipeline pipeline(options);
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(outcome.stages_completed.empty());
  EXPECT_NE(outcome.message.find("budget"), std::string::npos) << outcome.message;
}

TEST(RunCheckedTest, DeadlineOutcomeIsIdenticalAtAnyJobs) {
  for (const int jobs : {1, 8}) {
    PipelineOptions options = quiet_options();
    options.run.deadline_ms = 1e-6;
    options.run.jobs = jobs;
    Pipeline pipeline(options);
    const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
    ASSERT_FALSE(outcome.ok()) << "jobs=" << jobs;
    EXPECT_EQ(outcome.code, ErrorCode::kDeadlineExceeded) << "jobs=" << jobs;
    EXPECT_TRUE(outcome.stages_completed.empty()) << "jobs=" << jobs;
  }
}

TEST(RunCheckedTest, GenerousDeadlineDoesNotPerturbTheRun) {
  PipelineOptions options = quiet_options();
  options.run.deadline_ms = 60000;
  options.run.stage_deadline_ms = 30000;
  Pipeline pipeline(options);
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  ASSERT_TRUE(outcome.ok()) << outcome.message;

  // Same circuit, no deadline: the verified trial fingerprints agree, so
  // the deadline plumbing is pure control flow, not a result change.
  Pipeline unbounded(quiet_options());
  const RunOutcome baseline = unbounded.run_checked_g(kXyzG);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(outcome.run->conformance.external_transitions,
            baseline.run->conformance.external_transitions);
  EXPECT_EQ(outcome.run->conformance.internal_toggles, baseline.run->conformance.internal_toggles);
}

// ---------------------------------------------------------------------------
// Kernel-mismatch degradation
// ---------------------------------------------------------------------------

TEST(KernelFallbackTest, VerifyKernelsIsCleanWithoutInjection) {
  PipelineOptions options = quiet_options();
  options.run.verify_kernels = true;
  Pipeline pipeline(options);
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  ASSERT_TRUE(outcome.ok()) << outcome.message;
  EXPECT_TRUE(outcome.run->kernel_fallbacks.empty());
}

TEST(KernelFallbackTest, InjectedFaultDegradesToReferenceKernels) {
  const FaultInjectionGuard guard(true);
  PipelineOptions options = quiet_options();
  options.run.verify_kernels = true;
  Pipeline pipeline(options);
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  // The mismatch is detected, logged and degraded — the run still
  // completes on the reference kernels instead of failing the batch.
  ASSERT_TRUE(outcome.ok()) << outcome.message;
  ASSERT_EQ(outcome.run->kernel_fallbacks.size(), 1u);
  EXPECT_NE(outcome.run->kernel_fallbacks[0].find("conformance:"), std::string::npos);
  EXPECT_NE(outcome.run->kernel_fallbacks[0].find("diverged"), std::string::npos);
  EXPECT_TRUE(outcome.run->conformance_ran);
  EXPECT_TRUE(outcome.run->ok());
}

TEST(KernelFallbackTest, FallbackIsCountedInObservability) {
  const FaultInjectionGuard guard(true);
  PipelineOptions options = quiet_options();
  options.collect_observability = true;
  options.run.verify_kernels = true;
  Pipeline pipeline(options);
  const RunOutcome outcome = pipeline.run_checked_g(kXyzG);
  ASSERT_TRUE(outcome.ok()) << outcome.message;
  ASSERT_NE(pipeline.session(), nullptr);
  EXPECT_GE(pipeline.session()->counter_total(obs::Counter::kKernelMismatches), 1);
  EXPECT_GE(pipeline.session()->counter_total(obs::Counter::kKernelFallbacks), 1);
}

TEST(KernelFallbackTest, ThrowingRunVariantAlsoDegrades) {
  const FaultInjectionGuard guard(true);
  PipelineOptions options = quiet_options();
  options.run.verify_kernels = true;
  Pipeline pipeline(options);
  const PipelineRun run = pipeline.run(bench_suite::build_benchmark("converta"));
  EXPECT_TRUE(run.conformance_ran);
  ASSERT_EQ(run.kernel_fallbacks.size(), 1u);
  EXPECT_TRUE(run.ok());
}

}  // namespace
}  // namespace nshot
