file(REMOVE_RECURSE
  "CMakeFiles/bench_suite_test.dir/bench_suite_test.cpp.o"
  "CMakeFiles/bench_suite_test.dir/bench_suite_test.cpp.o.d"
  "bench_suite_test"
  "bench_suite_test.pdb"
  "bench_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
