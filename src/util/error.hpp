// Error handling shared by all nshot libraries: a structured taxonomy
// (ErrorCode), context chains, and a lightweight Result<T> for callers
// that prefer values over exceptions.
//
// All precondition violations and invalid-input conditions are reported by
// throwing nshot::Error (a std::runtime_error).  The NSHOT_REQUIRE macro is
// used at public API boundaries; internal invariants use NSHOT_ASSERT which
// also throws (never aborts) so that library users can recover.  Every
// Error carries an ErrorCode so batch drivers can classify failures
// (input-invalid vs deadline-exceeded vs internal) without string-matching,
// and a context chain (`add_context`) so a low-level diagnostic surfaces
// with the stage / benchmark / file that produced it.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace nshot {

/// Failure taxonomy.  Stable snake-case names (error_code_name) appear in
/// batch journals, summaries and RunReports; parsing them back is
/// error_code_from_name.
enum class ErrorCode : int {
  kInputInvalid = 0,   // malformed text input, bad arguments, precondition
  kUnimplementable,    // SG outside the synthesizable class (Theorem 2)
  kResourceExhausted,  // state caps, minterm blowup, allocation failure
  kDeadlineExceeded,   // cooperative cancellation / deadline overrun
  kKernelMismatch,     // optimized kernel diverged from its reference oracle
  kInternal,           // broken invariant — always a bug in this library
  kCount
};

const char* error_code_name(ErrorCode code);

/// Inverse of error_code_name; kInternal for unknown names.
ErrorCode error_code_from_name(const std::string& name);

/// Base exception type for all errors raised by the nshot libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : Error(ErrorCode::kInputInvalid, what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code), message_(what) {}

  ErrorCode code() const { return code_; }

  /// The original diagnostic, without the context chain.
  const std::string& message() const { return message_; }

  /// Outermost-first context frames added on the way up the stack.
  const std::vector<std::string>& context() const { return context_; }

  /// Prepend one context frame ("synthesize converta", "batch run #12").
  /// Frames render outermost-first in what():  "ctx2: ctx1: message".
  Error& add_context(std::string frame) {
    context_.push_back(std::move(frame));
    rendered_.clear();
    return *this;
  }

  /// message() prefixed by the context chain.
  const char* what() const noexcept override;

 private:
  ErrorCode code_ = ErrorCode::kInputInvalid;
  std::string message_;
  std::vector<std::string> context_;     // innermost-first storage
  mutable std::string rendered_;         // lazy what() cache
};

[[noreturn]] void raise_error(const char* file, int line, const std::string& message);
[[noreturn]] void raise_error(const char* file, int line, ErrorCode code,
                              const std::string& message);

/// Classify any in-flight exception: nshot::Error reports its own code,
/// std::bad_alloc maps to resource-exhausted, everything else is internal.
ErrorCode classify_exception(const std::exception& e);

/// Run `fn()`, stamping `frame` onto any nshot::Error that escapes (other
/// exception types pass through untouched).  This is how pipeline stages
/// attach "stage synthesize (converta)" to a deep diagnostic.
template <typename Fn>
auto with_error_context(const std::string& frame, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (Error& e) {
    e.add_context(frame);
    throw;
  }
}

/// Value-or-error return type for callers that must not unwind (batch
/// drivers, the soak harness).  Holds either a T or an Error; exactly one
/// is ever populated.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  T& value() {
    require_ok();
    return *value_;
  }
  const T& value() const {
    require_ok();
    return *value_;
  }
  T take_value() {
    require_ok();
    return std::move(*value_);
  }

  const Error& error() const {
    if (ok_) throw Error(ErrorCode::kInternal, "Result::error() on an ok result");
    return *error_;
  }

  /// Map an ok value through `fn`, propagating an error unchanged.
  template <typename Fn>
  auto map(Fn&& fn) && -> Result<decltype(fn(std::declval<T>()))> {
    if (!ok_) return std::move(*error_);
    return fn(std::move(*value_));
  }

  /// Wrap `fn()` — which may throw — into a Result.
  template <typename Fn>
  static Result<T> from(Fn&& fn) {
    try {
      return Result<T>(fn());
    } catch (const Error& e) {
      return Result<T>(e);
    } catch (const std::exception& e) {
      return Result<T>(Error(classify_exception(e), e.what()));
    }
  }

 private:
  void require_ok() const {
    if (!ok_) throw Error(ErrorCode::kInternal, "Result::value() on an error result");
  }

  // Optionals so T need not be default-constructible (PipelineRun is not).
  std::optional<T> value_;
  std::optional<Error> error_;
  bool ok_ = false;
};

}  // namespace nshot

/// Check a caller-visible precondition; throws nshot::Error (input-invalid)
/// on failure.
#define NSHOT_REQUIRE(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::nshot::raise_error(__FILE__, __LINE__, (msg)); \
  } while (false)

/// Check a precondition, throwing with an explicit taxonomy code.
#define NSHOT_REQUIRE_CODE(cond, code, msg)                               \
  do {                                                                    \
    if (!(cond)) ::nshot::raise_error(__FILE__, __LINE__, (code), (msg)); \
  } while (false)

/// Check an internal invariant; throws nshot::Error (internal) on failure.
#define NSHOT_ASSERT(cond, msg)                                                   \
  do {                                                                            \
    if (!(cond))                                                                  \
      ::nshot::raise_error(__FILE__, __LINE__, ::nshot::ErrorCode::kInternal,     \
                           std::string("internal: ") + (msg));                    \
  } while (false)
