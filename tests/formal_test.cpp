// Tests for the exhaustive speed-independence verifier and the delay-class
// classification it reproduces from the paper:
//
//  * N-SHOT circuits are correct under bounded delays (the timed
//    conformance suite) but are "neither speed-independent nor
//    delay-insensitive" (Section IV-A) — the untimed verifier must find
//    the trespassing-pulse scenario that Eq. 1's timing contract excludes.
//  * The SYN-like monotonous-cover circuits ARE speed-independent on the
//    simple benchmarks (the formal check passes exhaustively), and lose
//    that property exactly on the circuits where the paper reports SYN
//    needed "extra internal hardware to ensure proper acknowledgement".
//  * Decomposed complex-gate circuits are hazardous — the reason [2, 17]
//    must assume the complex gate is one atomic element.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "formal/si_verifier.hpp"
#include "nshot/synthesis.hpp"
#include "util/error.hpp"

namespace nshot::formal {
namespace {

TEST(SiVerifierTest, SynLikeCoversAreSpeedIndependent) {
  // Exhaustive over all delay interleavings: the monotonous-cover
  // C-implementation never misfires on these benchmarks.
  for (const char* name : {"chu133", "chu150", "chu172", "ebergen", "full", "hazard", "qr42",
                           "vbe5b", "sbuf-send-ctl"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const auto syn = baselines::synthesize_syn_like(g);
    ASSERT_TRUE(syn.ok()) << name;
    const SiVerifyResult result = verify_external_hazard_freeness(g, syn.result->circuit);
    EXPECT_TRUE(result.ok) << name << ": " << result.violation;
    EXPECT_FALSE(result.exhausted) << name;
    EXPECT_GT(result.states_explored, 0u);
  }
}

TEST(SiVerifierTest, SynLikeNeedsAckHardwareOnTheHardCircuits) {
  // Monotonous covers alone are not enough where cube falls go
  // unacknowledged — the circuits for which Table 2 shows SYN paying
  // extra area for acknowledgement hardware.
  for (const char* name : {"converta", "hybridf", "pr-rcv-ifc"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const auto syn = baselines::synthesize_syn_like(g);
    ASSERT_TRUE(syn.ok()) << name;
    const SiVerifyResult result = verify_external_hazard_freeness(g, syn.result->circuit);
    EXPECT_FALSE(result.ok) << name;
  }
}

TEST(SiVerifierTest, NshotIsNotSpeedIndependentAsThePaperStates) {
  // Section IV-A: the N-SHOT designs rely on delay BOUNDS (Eq. 1), so the
  // unbounded-delay abstraction finds the stale-SOP trespass scenario.
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const core::SynthesisResult nshot = core::synthesize(g);
  const SiVerifyResult result = verify_external_hazard_freeness(g, nshot.circuit);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.violation.empty());
}

TEST(SiVerifierTest, DecomposedComplexGatesAreHazardous) {
  // The complex-gate methods assume each SOP is one atomic gate; its
  // gate-level decomposition is not hazard-free.
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const auto cg = baselines::synthesize_complex_gate(g);
  ASSERT_TRUE(cg.ok());
  const SiVerifyResult result = verify_external_hazard_freeness(g, cg.result->circuit);
  EXPECT_FALSE(result.ok);
}

TEST(SiVerifierTest, DetectsDeadlocksExhaustively) {
  // A circuit whose output can never fire: quiescence with a pending
  // non-input transition is reported.
  const sg::StateGraph g = bench_suite::build_g(bench_suite::staged_cycle_g(
      "stall", {"x"}, {"y"}, {{"x+"}, {"y+"}, {"x-"}, {"y-"}}));
  netlist::Netlist nl("stall");
  const netlist::NetId x = nl.add_net("x");
  const netlist::NetId y = nl.add_net("y");
  const netlist::NetId yb = nl.add_net("y_b");
  const netlist::NetId c0 = nl.add_net("const0");
  const netlist::NetId c1 = nl.add_net("const1");
  nl.add_primary_input(x);
  nl.add_primary_input(c0);
  nl.add_primary_input(c1);
  nl.add_primary_output(y);
  nl.add_gate(netlist::Gate{.type = gatelib::GateType::kMhsFlipFlop,
                            .name = "y_mhs",
                            .inputs = {c0, c0, c1, c1},
                            .outputs = {y, yb}});
  const SiVerifyResult result = verify_external_hazard_freeness(g, nl);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("deadlock"), std::string::npos);
}

TEST(SiVerifierTest, StateCapYieldsInconclusive) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const auto syn = baselines::synthesize_syn_like(g);
  ASSERT_TRUE(syn.ok());
  SiVerifyOptions options;
  options.max_states = 3;
  const SiVerifyResult result = verify_external_hazard_freeness(g, syn.result->circuit, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.ok);
}

TEST(SiVerifierTest, RejectsOversizedCircuits) {
  const sg::StateGraph g = bench_suite::build_benchmark("master-read");
  const core::SynthesisResult nshot = core::synthesize(g);
  if (nshot.circuit.num_nets() > 64)
    EXPECT_THROW(verify_external_hazard_freeness(g, nshot.circuit), Error);
  else
    GTEST_SKIP() << "circuit fits in 64 nets";
}

}  // namespace
}  // namespace nshot::formal
