file(REMOVE_RECURSE
  "libnshot_netlist.a"
)
