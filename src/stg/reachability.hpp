// Token-flow reachability: build the state graph of a 1-safe STG.
//
// The binary code of each SG state is derived from the firing history: the
// initial value of a signal is either declared (.init) or inferred from the
// polarity of its first reachable firing (a consistent STG fires +x first
// iff x starts at 0).  Inconsistent encodings, non-1-safe nets and
// non-deterministic labellings are rejected with diagnostics.
//
// Dummy transitions are eliminated by EAGER SATURATION: whenever a dummy
// is enabled it fires immediately, and the closure over all dummy firing
// orders must converge on one dummy-quiescent marking.  This is the
// standard instantaneous-dummy abstraction; it assumes dummies are
// confusion-free (they do not compete with labelled transitions for
// tokens), and rejects non-confluent or cyclic dummy structures.
#pragma once

#include "sg/state_graph.hpp"
#include "stg/stg.hpp"

namespace nshot::stg {

struct ReachabilityOptions {
  /// Abort if the marking graph exceeds this many states.
  std::size_t max_states = 1u << 20;
  /// Track visited markings in ordered std::map and fire transitions by
  /// place-at-a-time loops instead of the hashed-map + mask-compiled word
  /// firing hot path — for kernel equivalence tests and benchmarking only.
  /// State numbering follows BFS discovery order (queue-driven, never map
  /// iteration order) and the mask kernel falls back to the loop firing on
  /// 1-safety violations for identical diagnostics, so both paths build
  /// identical graphs and throw identical errors.
  bool reference_maps = false;
  /// Worker count for build_state_graph (1 = the serial hot path;
  /// ignored when reference_maps is set).  jobs > 1 runs a
  /// level-synchronous BFS whose visited set is sharded by marking hash:
  /// frontier markings expand in parallel, each shard dedups its own
  /// candidates against an open-addressing table backed by arena pages,
  /// and a serial replay in candidate order assigns StateIds, edges and
  /// every diagnostic in exactly the serial BFS order — the resulting
  /// graph (and any thrown error) is byte-identical at every jobs value.
  /// infer_initial_values and dead_transitions always run serially.
  int jobs = 1;
};

/// Infer the initial signal values (declared values win; otherwise first
/// firing polarity).  Throws if a signal never fires and has no declared
/// value.
std::vector<bool> infer_initial_values(const Stg& stg, const ReachabilityOptions& options = {});

/// Build the reachable state graph.  Input signals of the STG become SG
/// input signals; output and internal signals become SG non-input signals.
sg::StateGraph build_state_graph(const Stg& stg, const ReachabilityOptions& options = {});

/// Liveness diagnostic: transitions that never fire in the reachability
/// graph (empty = every transition is fireable at least once).
std::vector<TransitionId> dead_transitions(const Stg& stg,
                                           const ReachabilityOptions& options = {});

}  // namespace nshot::stg
