// Developer calibration tool: checks every benchmark reconstruction against
// the properties the paper's flow requires and prints actual vs paper state
// counts.  Used to tune the generator parameters in bench_suite.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "formal/si_verifier.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "util/strings.hpp"

static void synth_all(int max_states) {
  using namespace nshot;
  std::printf("%-15s %7s %7s %7s %9s %7s %7s %7s %8s\n", "benchmark", "states", "cubes", "lits",
              "area", "delay", "t_del?", "conf", "ms");
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    if (g.num_states() > max_states) continue;
    const auto start = std::chrono::steady_clock::now();
    try {
      const auto result = core::synthesize(g);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      sim::ConformanceOptions copt;
      copt.runs = 3;
      copt.max_transitions = 60;
      const auto conf = sim::check_conformance(g, result.circuit, copt);
      std::printf("%-15s %7d %7zu %7d %9.0f %7.1f %7s %7s %8.0f\n", info.name.c_str(),
                  g.num_states(), result.cover.size(), result.cover.literal_count(),
                  result.stats.area, result.stats.delay,
                  result.delay_compensation_used ? "yes" : "no",
                  conf.clean() ? "clean" : "FAIL", ms);
      if (!conf.clean()) std::printf("    %s\n", conf.summary().c_str());
    } catch (const std::exception& e) {
      std::printf("%-15s %7d SYNTH FAILED: %s\n", info.name.c_str(), g.num_states(), e.what());
    }
  }
}

static void baselines_all(int max_states) {
  using namespace nshot;
  std::printf("%-15s %7s | %18s | %18s | %18s\n", "benchmark", "states", "sis(area/del/fix)",
              "syn(area/del)", "cg(area/del)");
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    if (g.num_states() > max_states) continue;
    auto fmt = [](const baselines::BaselineOutcome& o, int fixes = -1) {
      char buf[64];
      if (o.ok()) {
        if (fixes >= 0)
          std::snprintf(buf, sizeof buf, "%.0f/%.1f/%d", o.result->stats.area,
                        o.result->stats.delay, o.result->hazard_fixes);
        else
          std::snprintf(buf, sizeof buf, "%.0f/%.1f", o.result->stats.area,
                        o.result->stats.delay);
      } else {
        std::snprintf(buf, sizeof buf, "%s", baselines::failure_text(*o.failure).c_str());
      }
      return std::string(buf);
    };
    const auto sis = baselines::synthesize_sis_like(g);
    const auto syn = baselines::synthesize_syn_like(g);
    const auto cg = baselines::synthesize_complex_gate(g);
    std::printf("%-15s %7d | %18s | %18s | %18s\n", info.name.c_str(), g.num_states(),
                fmt(sis, sis.ok() ? sis.result->hazard_fixes : -1).c_str(), fmt(syn).c_str(),
                fmt(cg).c_str());
  }
}

static void formal_all(int max_states) {
  using namespace nshot;
  std::printf("%-15s %7s | %14s %10s | %14s %10s\n", "benchmark", "states", "nshot(SI)",
              "explored", "syn(SI)", "explored");
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    if (g.num_states() > max_states) continue;
    auto describe = [](const formal::SiVerifyResult& r) {
      return r.exhausted ? "inconclusive" : (r.ok ? "pass" : "FAIL");
    };
    const auto nshot_result = core::synthesize(g);
    formal::SiVerifyResult nshot_si;
    try {
      nshot_si = formal::verify_external_hazard_freeness(g, nshot_result.circuit);
    } catch (const std::exception& e) {
      std::printf("%-15s %7d | error: %s\n", info.name.c_str(), g.num_states(), e.what());
      continue;
    }
    const auto syn = baselines::synthesize_syn_like(g);
    std::string syn_text = "n/a";
    std::size_t syn_explored = 0;
    if (syn.ok()) {
      const auto syn_si = formal::verify_external_hazard_freeness(g, syn.result->circuit);
      syn_text = describe(syn_si);
      syn_explored = syn_si.states_explored;
    }
    std::printf("%-15s %7d | %14s %10zu | %14s %10zu\n", info.name.c_str(), g.num_states(),
                describe(nshot_si), nshot_si.states_explored, syn_text.c_str(), syn_explored);
  }
}

int main(int argc, char** argv) try {
  using namespace nshot;
  const auto state_budget = [&](int fallback) {
    return argc > 2 ? parse_int(argv[2], 1, 10'000'000, "state budget") : fallback;
  };
  if (argc > 1 && std::strcmp(argv[1], "--formal") == 0) {
    formal_all(state_budget(100));
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--synth") == 0) {
    synth_all(state_budget(300));
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--baselines") == 0) {
    baselines_all(state_budget(300));
    return 0;
  }
  std::printf("%-15s %7s %7s  %-5s %-5s %-5s %-5s %-6s %-6s\n", "benchmark", "paper", "actual",
              "cons", "reach", "semi", "csc", "distr", "1trav");
  for (const auto& info : bench_suite::all_benchmarks()) {
    try {
      const sg::StateGraph g = info.build();
      const bool cons = sg::check_consistency(g).ok();
      const bool reach = sg::check_reachability(g).ok();
      const bool semi = sg::check_semi_modular(g).ok();
      const bool csc = sg::check_csc(g).ok();
      const bool distr = sg::is_distributive(g);
      const bool trav = sg::is_single_traversal(g);
      std::printf("%-15s %7d %7d  %-5s %-5s %-5s %-5s %-6s %-6s\n", info.name.c_str(),
                  info.paper_states, g.num_states(), cons ? "ok" : "FAIL",
                  reach ? "ok" : "FAIL", semi ? "ok" : "FAIL", csc ? "ok" : "FAIL",
                  distr ? "yes" : "no", trav ? "yes" : "no");
      if (!csc) std::printf("    csc: %s\n", sg::check_csc(g).summary().c_str());
      if (!semi) std::printf("    semi: %s\n", sg::check_semi_modular(g).summary().c_str());
      if (!cons) std::printf("    cons: %s\n", sg::check_consistency(g).summary().c_str());
    } catch (const std::exception& e) {
      std::printf("%-15s %7d BUILD FAILED: %s\n", info.name.c_str(), info.paper_states,
                  e.what());
    }
  }
  return 0;
}
catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
