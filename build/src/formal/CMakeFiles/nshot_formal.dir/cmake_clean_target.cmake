file(REMOVE_RECURSE
  "libnshot_formal.a"
)
