# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/sg_test[1]_include.cmake")
include("/root/repo/build/tests/regions_test[1]_include.cmake")
include("/root/repo/build/tests/stg_test[1]_include.cmake")
include("/root/repo/build/tests/nshot_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/bench_suite_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/csc_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/random_controller_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/formal_test[1]_include.cmake")
include("/root/repo/build/tests/espresso_steps_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_extras_test[1]_include.cmake")
include("/root/repo/build/tests/golden_results_test[1]_include.cmake")
