#include "sim/trial_batch.hpp"

#include <limits>
#include <optional>

#include "obs/obs.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::GateId;
using netlist::NetId;

// ---------------------------------------------------------------------------
// BatchPlanes
// ---------------------------------------------------------------------------

std::uint64_t BatchPlanes::input_plane(const CompiledGate& gate, std::size_t i) const {
  // Packed code: every plane is confined to lane_mask_, so the inversion
  // bubble is an XOR with the mask (branchless), not a ~v & mask.
  const std::uint32_t code = compiled_->input_code(gate, i);
  const std::uint64_t v = value_[code >> 1];
  return v ^ (lane_mask_ & (0 - static_cast<std::uint64_t>(code & 1u)));
}

namespace {
std::uint64_t eval_plane(const BatchPlanes& planes, const CompiledNetlist& cn,
                         const CompiledGate& gate, std::uint64_t lane_mask) {
  auto in = [&](std::size_t i) {
    const std::uint32_t code = cn.input_code(gate, i);
    const std::uint64_t v = planes.plane(static_cast<netlist::NetId>(code >> 1));
    return v ^ (lane_mask & (0 - static_cast<std::uint64_t>(code & 1u)));
  };
  switch (gate.type) {
    case GateType::kAnd: {
      std::uint64_t acc = lane_mask;
      for (std::size_t i = 0; i < gate.num_inputs; ++i) acc &= in(i);
      return acc;
    }
    case GateType::kOr: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < gate.num_inputs; ++i) acc |= in(i);
      return acc;
    }
    case GateType::kInv:
      return ~in(0) & lane_mask;
    case GateType::kBuf:
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return in(0);
    default:
      NSHOT_ASSERT(false, "eval_plane on a storage gate");
  }
  return 0;
}
}  // namespace

void BatchPlanes::settle(const CompiledNetlist& compiled,
                         const std::vector<std::pair<NetId, bool>>& fixed,
                         const LaneOverrides* overrides, int lanes) {
  NSHOT_REQUIRE(lanes >= 1 && lanes <= 64, "BatchPlanes::settle lane count out of range");
  compiled_ = &compiled;
  lane_mask_ = lanes == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes) - 1);
  const std::size_t num_nets = static_cast<std::size_t>(compiled.num_nets());
  value_.assign(num_nets, 0);
  is_source_.assign(num_nets, 0);
  for (const auto& [net, v] : fixed) {
    value_[static_cast<std::size_t>(net)] = v ? lane_mask_ : 0;
    is_source_[static_cast<std::size_t>(net)] = 1;
  }
  if (overrides != nullptr) {
    NSHOT_REQUIRE(overrides->size() == static_cast<std::size_t>(lanes),
                  "BatchPlanes::settle needs one override list per lane");
    for (int lane = 0; lane < lanes; ++lane) {
      const std::uint64_t bit = std::uint64_t{1} << lane;
      for (const auto& [net, v] : (*overrides)[static_cast<std::size_t>(lane)]) {
        const std::size_t idx = static_cast<std::size_t>(net);
        value_[idx] = v ? (value_[idx] | bit) : (value_[idx] & ~bit);
        is_source_[idx] = 1;
      }
    }
  }

  // The dependency-order relaxation of Simulator::initialize, evaluated
  // once per gate for all lanes (same REQUIRE diagnostics).
  const netlist::Netlist& netlist = compiled.netlist();
  pending_.clear();
  for (GateId g = 0; g < compiled.num_gates(); ++g) {
    const CompiledGate& gate = compiled.gate(g);
    if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      NSHOT_REQUIRE(is_source_[static_cast<std::size_t>(gate.out0)],
                    "initialize: storage output " + netlist.net_name(gate.out0) +
                        " needs an initial value");
      if (gate.out1 >= 0)
        NSHOT_REQUIRE(is_source_[static_cast<std::size_t>(gate.out1)],
                      "initialize: storage output " + netlist.net_name(gate.out1) +
                          " needs an initial value");
    } else {
      pending_.push_back(g);
    }
  }
  net_known_ = is_source_;
  for (const NetId pi : netlist.primary_inputs()) net_known_[static_cast<std::size_t>(pi)] = 1;
  bool progress = true;
  while (progress && !pending_.empty()) {
    progress = false;
    still_.clear();
    for (const GateId g : pending_) {
      const CompiledGate& gate = compiled.gate(g);
      bool ready = true;
      for (std::size_t i = 0; i < gate.num_inputs; ++i)
        if (!net_known_[static_cast<std::size_t>(compiled.input(gate, i))]) {
          ready = false;
          break;
        }
      if (!ready) {
        still_.push_back(g);
        continue;
      }
      value_[static_cast<std::size_t>(gate.out0)] = eval_plane(*this, compiled, gate, lane_mask_);
      net_known_[static_cast<std::size_t>(gate.out0)] = 1;
      progress = true;
    }
    std::swap(pending_, still_);
  }
  NSHOT_ASSERT(pending_.empty(), "initialize: combinational cycle or undriven input");
}

void BatchPlanes::extract(int lane, std::vector<std::uint8_t>& out) const {
  out.assign(value_.size(), 0);
  for (std::size_t i = 0; i < value_.size(); ++i)
    out[i] = static_cast<std::uint8_t>((value_[i] >> lane) & 1);
}

std::uint64_t BatchPlanes::storage_target(GateId g) const {
  const CompiledGate& gate = compiled_->gate(g);
  if (gate.feedback_cut) return value_[static_cast<std::size_t>(compiled_->input(gate, 0))];
  switch (gate.type) {
    case GateType::kRsLatch: {
      const std::uint64_t s = input_plane(gate, 0);
      const std::uint64_t r = input_plane(gate, 1);
      const std::uint64_t q = value_[static_cast<std::size_t>(gate.out0)];
      return (s | (~r & q)) & lane_mask_;  // set dominant
    }
    case GateType::kCElement: {
      std::uint64_t all_one = lane_mask_;
      std::uint64_t any_one = 0;
      for (std::size_t i = 0; i < gate.num_inputs; ++i) {
        const std::uint64_t p = input_plane(gate, i);
        all_one &= p;
        any_one |= p;
      }
      const std::uint64_t q = value_[static_cast<std::size_t>(gate.out0)];
      return all_one | (any_one & q);
    }
    default:
      NSHOT_ASSERT(false, "storage_target on a non-storage gate");
  }
  return 0;
}

std::uint64_t BatchPlanes::mhs_excitation(GateId g, bool set) const {
  const CompiledGate& gate = compiled_->gate(g);
  NSHOT_ASSERT(gate.type == GateType::kMhsFlipFlop && gate.num_inputs == 4,
               "mhs_excitation expects an MHS cell");
  const std::size_t a = static_cast<std::size_t>(compiled_->input(gate, set ? 0 : 1));
  const std::size_t b = static_cast<std::size_t>(compiled_->input(gate, set ? 2 : 3));
  return value_[a] & value_[b];
}

// ---------------------------------------------------------------------------
// TrialRunner
// ---------------------------------------------------------------------------

TrialRunner::TrialRunner(const CompiledNetlist& compiled)
    : compiled_(&compiled), sim_(compiled, SimulatorOptions{}, QueueKind::kAdaptive) {}

const std::vector<std::uint8_t>& TrialRunner::settled(
    const std::vector<std::pair<NetId, bool>>& fixed, int lanes) {
  if (have_settle_ && settle_key_ == fixed) return settled_;
  planes_.settle(*compiled_, fixed, nullptr, lanes);
  planes_.extract(0, settled_);
  settle_key_ = fixed;
  have_settle_ = true;
  return settled_;
}

void TrialRunner::prime_settle(const std::vector<std::pair<NetId, bool>>& fixed, int lanes) {
  have_settle_ = false;  // force the wide pass even on a same-key reuse
  settled(fixed, lanes);
}

ConformanceReport TrialRunner::run(const sg::StateGraph& spec, const SpecBinding& binding,
                                   const ClosedLoopConfig& config, VcdRecorder* recorder) {
  ConformanceReport report;
  report.runs = 1;
  sim_.reset(config.sim);
  run_fast(spec, binding, config, report, recorder);
  return report;
}

// The fast driver.  Control flow, RNG draw sequence, violation strings and
// report arithmetic replicate run_once in conformance.cpp exactly — the
// differences are mechanical: commits arrive through the commit log (at
// most one commit happens per step, and forces drain immediately, so
// sim_.now() is every logged commit's time), and the environment's choice
// list is rebuilt only when the spec state or forced-net set could have
// changed (run_once rebuilds each iteration, but a rebuild's outcome —
// including whether the RNG is drawn — only depends on that state).
void TrialRunner::run_fast(const sg::StateGraph& spec, const SpecBinding& binding,
                           const ClosedLoopConfig& config, ConformanceReport& report,
                           VcdRecorder* recorder) {
  const std::uint64_t seed = config.sim.seed;
  Rng rng(env_stream(config.env_seed != 0 ? config.env_seed : seed));
  const std::vector<NetId>& signal_net = binding.signal_net;
  const std::vector<int>& net_signal = binding.net_signal;

  sg::StateId state = spec.initial();
  long run_transitions = 0;
  bool failed = false;
  bool env_dirty = true;  // choices stale: rebuild before the first decision

  NetObserver vcd_observer = recorder ? recorder->observer() : NetObserver{};
  log_.clear();
  sim_.set_commit_log(&log_);

  // The spec walk for one committed observable change.
  auto walk = [&](NetId net, bool value, double time) {
    const int x = net_signal[static_cast<std::size_t>(net)];
    if (x < 0 || failed) return;  // internal net, or already failing
    const sg::StateId next = binding.next_state(state, x, value);
    if (next >= 0) {
      state = next;
      ++run_transitions;
      return;
    }
    failed = true;
    const sg::TransitionLabel label{x, value};
    report.violations.push_back(ConformanceViolation{
        seed, time, spec.is_input(x) ? ViolationKind::kEnvironment : ViolationKind::kHazard,
        "unexpected transition " + spec.label_name(label) + " in state " +
            spec.state_name(state) + (spec.is_input(x) ? " (environment bug)" : " (hazard)")});
  };
  // One committed change: VCD capture, extra observer, spec check — the
  // order run_once's observer runs them.
  auto check = [&](NetId net, bool value, double time) {
    if (vcd_observer) vcd_observer(net, value, time);
    if (config.observer) config.observer(net, value, time);
    walk(net, value, time);
  };
  auto drain = [&]() {
    if (log_.empty()) return;
    const double t = sim_.now();
    const sg::StateId before = state;
    for (const Simulator::Commit& c : log_) check(c.net, c.value, t);
    log_.clear();
    if (state != before) env_dirty = true;
  };

  sim_.initialize_from_settled(settled(binding.initial_values, 1));
  if (recorder) recorder->capture_initial(sim_);
  if (config.on_initialized) config.on_initialized(sim_);
  for (const auto& [net, value] : config.forces) {
    sim_.force_net(net, value);
    drain();
  }

  struct InputDecision {
    sg::TransitionLabel label;
    double time;
  };
  std::optional<InputDecision> decision;
  std::size_t next_injection = 0;
  constexpr double kNever = std::numeric_limits<double>::infinity();

  // (Re)validate or make the environment's next input decision; shared by
  // both driver loops below.
  auto refresh_decision = [&]() {
    if (decision &&
        binding.next_state(state, decision->label.signal, decision->label.rising) < 0)
      decision.reset();
    if (!decision && env_dirty) {
      choices_.clear();
      for (const sg::Edge& e : spec.out_edges(state))
        if (spec.is_input(e.label.signal) &&
            !sim_.is_forced(signal_net[static_cast<std::size_t>(e.label.signal)]))
          choices_.push_back(e.label);
      if (!choices_.empty()) {
        const sg::TransitionLabel pick = choices_[rng.next_below(choices_.size())];
        decision = InputDecision{
            pick, sim_.now() + rng.next_double(config.input_delay_min, config.input_delay_max)};
      }
      env_dirty = false;
    }
  };
  // Quiescent with no possible input: clean endpoint or deadlock.
  auto note_quiescence = [&]() {
    bool output_pending = false;
    bool input_starved = false;
    for (const sg::Edge& e : spec.out_edges(state)) {
      if (!spec.is_input(e.label.signal))
        output_pending = true;
      else if (sim_.is_forced(signal_net[static_cast<std::size_t>(e.label.signal)]))
        input_starved = true;
    }
    if (output_pending || input_starved) {
      ++report.deadlocks;
      report.violations.push_back(ConformanceViolation{
          seed, sim_.now(), ViolationKind::kDeadlock,
          output_pending
              ? "circuit quiescent but spec state " + spec.state_name(state) +
                    " still enables a non-input transition"
              : "circuit quiescent and every transition spec state " + spec.state_name(state) +
                    " enables is an input pinned by a fault"});
    }
  };

  if (config.injections.empty()) {
    // Fused driver: no timed injections means the schedule can only change
    // at the decision deadline or a spec state change, so the whole
    // pop-commit-evaluate cycle runs inside Simulator::run_burst and only
    // observable commits surface here.  Commits bypass the log entirely.
    sim_.set_commit_log(nullptr);
    NetObserver pre_observers;
    const NetObserver* pre = nullptr;
    if (vcd_observer || config.observer) {
      pre_observers = [&](NetId net, bool value, double time) {
        if (vcd_observer) vcd_observer(net, value, time);
        if (config.observer) config.observer(net, value, time);
      };
      pre = &pre_observers;
    }
    const int* net_sig = net_signal.data();

    while (!failed && run_transitions < config.max_transitions &&
           sim_.now() < config.time_limit && !sim_.budget_exhausted()) {
      refresh_decision();

      if (sim_.has_pending_events() &&
          (!decision || config.fundamental_mode || sim_.next_event_time() <= decision->time)) {
        const double bound = (decision && !config.fundamental_mode) ? decision->time : kNever;
        while (true) {
          const Simulator::BurstResult r = sim_.run_burst(net_sig, config.time_limit, bound, pre);
          if (r.stop != Simulator::BurstStop::kObservable) break;
          const sg::StateId before = state;
          walk(r.net, r.value, sim_.now());
          if (state != before) env_dirty = true;
          if (failed || state != before) break;
          if (sim_.now() >= config.time_limit) break;
          if (!sim_.has_pending_events()) break;
          if (decision && !config.fundamental_mode &&
              sim_.next_event_time() > decision->time)
            break;
        }
        continue;
      }
      if (decision) {
        if (config.fundamental_mode && decision->time < sim_.now())
          decision->time = sim_.now();  // the circuit outlasted the planned instant
        sim_.set_input(signal_net[static_cast<std::size_t>(decision->label.signal)],
                       decision->label.rising, decision->time);
        // Commit the just-scheduled input (one event, exactly as the
        // commit-log driver's set_input + step + drain).
        const Simulator::BurstResult r =
            sim_.run_burst(net_sig, config.time_limit, kNever, pre, /*single=*/true);
        if (r.stop == Simulator::BurstStop::kObservable) walk(r.net, r.value, sim_.now());
        env_dirty = true;  // redraw even if the input commit was deduped away
        decision.reset();
        continue;
      }
      note_quiescence();
      break;
    }
  } else {
    while (!failed && run_transitions < config.max_transitions &&
           sim_.now() < config.time_limit && !sim_.budget_exhausted()) {
      refresh_decision();

      const double event_time = sim_.has_pending_events() ? sim_.next_event_time() : kNever;
      const double decision_time = decision ? decision->time : kNever;
      const double injection_time =
          next_injection < config.injections.size()
              ? std::max(config.injections[next_injection].time, sim_.now())
              : kNever;

      if (next_injection < config.injections.size() && injection_time <= event_time &&
          injection_time <= decision_time) {
        const TimedInjection& inj = config.injections[next_injection++];
        sim_.advance_time(injection_time);
        if (inj.release)
          sim_.release_net(inj.net);
        else
          sim_.force_net(inj.net, inj.value);
        drain();
        env_dirty = true;  // the forced-net set changed
        continue;
      }

      if (sim_.has_pending_events() &&
          (!decision || config.fundamental_mode || event_time <= decision->time)) {
        sim_.step();
        drain();
        continue;
      }
      if (decision) {
        if (config.fundamental_mode && decision->time < sim_.now())
          decision->time = sim_.now();  // the circuit outlasted the planned instant
        sim_.set_input(signal_net[static_cast<std::size_t>(decision->label.signal)],
                       decision->label.rising, decision->time);
        sim_.step();
        drain();
        env_dirty = true;  // redraw even if the input commit was deduped away
        decision.reset();
        continue;
      }
      note_quiescence();
      break;
    }
  }

  if (sim_.budget_exhausted()) {
    ++report.budget_exhausted;
    report.violations.push_back(ConformanceViolation{
        seed, sim_.now(), ViolationKind::kEventBudget,
        "event budget exhausted after " + std::to_string(sim_.events_processed()) +
            " events (runaway oscillation under the current delays/faults?)"});
  }

  report.external_transitions += run_transitions;
  report.internal_toggles += sim_.total_toggles_excluding(binding.observable);
  report.absorbed_pulses += sim_.mhs_absorbed_pulses();
  report.simulated_time += sim_.now();
  sim_.set_commit_log(nullptr);
}

// ---------------------------------------------------------------------------
// TrialBatch
// ---------------------------------------------------------------------------

namespace {

bool shareable(const ClosedLoopConfig& config) {
  return !config.observer && !config.on_initialized;
}

bool injections_equal(const TimedInjection& a, const TimedInjection& b) {
  return a.time == b.time && a.net == b.net && a.release == b.release && a.value == b.value;
}

// Two configs describe the same trial iff every behaviour-bearing field
// matches (callbacks excluded: shareable() already requires them empty).
bool configs_equal(const ClosedLoopConfig& a, const ClosedLoopConfig& b) {
  if (a.sim.seed != b.sim.seed || a.sim.randomize_delays != b.sim.randomize_delays ||
      a.sim.max_events != b.sim.max_events || a.sim.explicit_delays != b.sim.explicit_delays ||
      a.sim.delay_overrides != b.sim.delay_overrides)
    return false;
  if (a.env_seed != b.env_seed || a.max_transitions != b.max_transitions ||
      a.input_delay_min != b.input_delay_min || a.input_delay_max != b.input_delay_max ||
      a.time_limit != b.time_limit || a.fundamental_mode != b.fundamental_mode)
    return false;
  if (a.forces != b.forces) return false;
  if (a.injections.size() != b.injections.size()) return false;
  for (std::size_t i = 0; i < a.injections.size(); ++i)
    if (!injections_equal(a.injections[i], b.injections[i])) return false;
  return true;
}

}  // namespace

void TrialBatch::run(const sg::StateGraph& spec, const SpecBinding& binding,
                     const ClosedLoopConfig* configs, int n, ConformanceReport* out) {
  NSHOT_REQUIRE(n >= 1 && n <= kLanes, "TrialBatch::run lane count out of range");
  obs::count(obs::Counter::kBatchTrials, n);
  // The lockstep segment: one word-parallel settle covers every lane (the
  // per-lane walk re-reads it from the runner's cache).
  runner_.prime_settle(binding.initial_values, n);
  long peels = 0;
  long lockstep_shared = 0;
  for (int i = 0; i < n; ++i) {
    int leader = -1;
    if (shareable(configs[i])) {
      for (int j = 0; j < i; ++j) {
        if (shareable(configs[j]) && configs_equal(configs[i], configs[j])) {
          leader = j;
          break;
        }
      }
    }
    if (leader >= 0) {
      // This lane never desynchronizes from its leader: identical delay
      // draws, env stream and fault schedule mean identical event order,
      // so the leader's scalar execution is this lane's execution.
      out[i] = out[leader];
      ++lockstep_shared;
    } else {
      out[i] = runner_.run(spec, binding, configs[i]);
      ++peels;
    }
  }
  obs::count(obs::Counter::kBatchPeels, peels);
  obs::count(obs::Counter::kBatchLockstepShared, lockstep_shared);
}

}  // namespace nshot::sim
