
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines_common.cpp" "src/baselines/CMakeFiles/nshot_baselines.dir/baselines_common.cpp.o" "gcc" "src/baselines/CMakeFiles/nshot_baselines.dir/baselines_common.cpp.o.d"
  "/root/repo/src/baselines/complex_gate.cpp" "src/baselines/CMakeFiles/nshot_baselines.dir/complex_gate.cpp.o" "gcc" "src/baselines/CMakeFiles/nshot_baselines.dir/complex_gate.cpp.o.d"
  "/root/repo/src/baselines/sis_like.cpp" "src/baselines/CMakeFiles/nshot_baselines.dir/sis_like.cpp.o" "gcc" "src/baselines/CMakeFiles/nshot_baselines.dir/sis_like.cpp.o.d"
  "/root/repo/src/baselines/syn_like.cpp" "src/baselines/CMakeFiles/nshot_baselines.dir/syn_like.cpp.o" "gcc" "src/baselines/CMakeFiles/nshot_baselines.dir/syn_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nshot_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nshot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/gatelib/CMakeFiles/nshot_gatelib.dir/DependInfo.cmake"
  "/root/repo/build/src/nshot/CMakeFiles/nshot_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
