#include "baselines/baselines.hpp"
#include "baselines/baselines_common.hpp"
#include "logic/espresso.hpp"
#include "logic/verify.hpp"
#include "sg/properties.hpp"
#include "util/error.hpp"

namespace nshot::baselines {

using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;

BaselineOutcome synthesize_complex_gate(const sg::StateGraph& sg) {
  if (!sg::check_implementability(sg).ok())
    return BaselineOutcome{std::nullopt, Failure::kNotImplementable};

  const logic::TwoLevelSpec spec = detail::next_state_spec(sg);
  const logic::Cover cover = logic::espresso(spec);
  NSHOT_ASSERT(logic::verify_cover(spec, cover).ok, "complex_gate cover incorrect");

  netlist::Netlist nl(sg.name() + "_cg");
  const std::vector<NetId> rails = detail::make_signal_rails(sg, nl);

  std::vector<NetId> cube_nets(cover.size(), -1);
  for (std::size_t c = 0; c < cover.size(); ++c)
    cube_nets[c] = detail::build_cube_gate(nl, cover[c], rails, "and" + std::to_string(c));

  const std::vector<sg::SignalId> noninputs = sg.noninput_signals();
  for (std::size_t k = 0; k < noninputs.size(); ++k) {
    const std::string base = sg.signal(noninputs[k]).name;
    std::vector<NetId> ors;
    for (std::size_t c = 0; c < cover.size(); ++c)
      if (cover[c].has_output(static_cast<int>(k))) ors.push_back(cube_nets[c]);
    NSHOT_REQUIRE(!ors.empty(), "complex_gate: constant next-state function for " + base);
    const NetId sop = ors.size() == 1
                          ? ors[0]
                          : nl.build_tree(GateType::kOr, ors, {}, base + "_or",
                                          /*force_gate=*/true);
    // The method assumes the whole SOP is one atomic hazard-free gate; the
    // zero-delay feedback wire closes the loop and cuts the analysis.
    nl.add_gate(Gate{.type = GateType::kDelayLine,
                     .name = base + "_fb",
                     .inputs = {sop},
                     .outputs = {rails[static_cast<std::size_t>(noninputs[k])]},
                     .explicit_delay = 0.0,
                     .feedback_cut = true});
  }

  nl.check_well_formed();
  BaselineResult result{std::move(nl), {}, 0};
  result.stats = result.circuit.stats(gatelib::GateLibrary::standard());
  return BaselineOutcome{std::move(result), std::nullopt};
}

}  // namespace nshot::baselines
