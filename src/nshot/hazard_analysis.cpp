#include "nshot/hazard_analysis.hpp"

#include <algorithm>
#include <set>

namespace nshot::core {

std::vector<StaticOneHazard> static_one_hazards(const sg::StateGraph& graph,
                                                const logic::TwoLevelSpec& spec,
                                                const logic::Cover& cover, int output) {
  std::vector<StaticOneHazard> sites;
  const auto& on = spec.on(output);
  for (sg::StateId s = 0; s < graph.num_states(); ++s) {
    const std::uint64_t code_s = graph.code(s);
    if (!std::binary_search(on.begin(), on.end(), code_s)) continue;
    for (const sg::Edge& e : graph.out_edges(s)) {
      const std::uint64_t code_t = graph.code(e.target);
      if (!std::binary_search(on.begin(), on.end(), code_t)) continue;
      bool single_cube = false;
      for (const logic::Cube& cube : cover) {
        if (cube.has_output(output) && cube.covers_minterm(code_s) &&
            cube.covers_minterm(code_t)) {
          single_cube = true;
          break;
        }
      }
      if (!single_cube) sites.push_back(StaticOneHazard{output, s, e.target, e.label});
    }
  }
  return sites;
}

int sop_activity_edges(const sg::StateGraph& graph, const logic::Cover& cover, int output,
                       const sg::ExcitationRegion& er) {
  std::set<sg::StateId> region(er.states.begin(), er.states.end());
  region.insert(er.quiescent.begin(), er.quiescent.end());
  int changes = 0;
  for (const sg::StateId s : region) {
    const bool value_s = cover.covers(graph.code(s), output);
    for (const sg::Edge& e : graph.out_edges(s)) {
      if (!region.contains(e.target)) continue;
      if (cover.covers(graph.code(e.target), output) != value_s) ++changes;
    }
  }
  return changes;
}

}  // namespace nshot::core
