// Tests for excitation/quiescent/trigger regions (Definitions 5-9,
// Properties 1-2, Figure 2, Figure 7).
#include <gtest/gtest.h>

#include <set>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "sg/regions.hpp"

namespace nshot::sg {
namespace {

TEST(RegionsTest, OrCellRegionsOfC) {
  const StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const SignalId c = *cell.find_signal("c");
  const SignalRegions regions = compute_regions(cell, c);

  // One up-ER (the three states where c is excited to rise) and one
  // down-ER (the three states where it is excited to fall).
  ASSERT_EQ(regions.regions.size(), 2u);
  for (const ExcitationRegion& er : regions.regions) {
    EXPECT_EQ(er.states.size(), 3u);
    for (const StateId s : er.states) {
      EXPECT_TRUE(cell.excited(s, c));
      EXPECT_EQ(cell.value(s, c), !er.rising);
    }
    // Figure 2 shape: the trigger region is the single state where both
    // inputs have arrived (the bottom SCC of the ER).
    ASSERT_EQ(er.trigger_regions.size(), 1u);
    EXPECT_EQ(er.trigger_regions[0].size(), 1u);
    EXPECT_TRUE(er.single_traversal());
    EXPECT_TRUE(verify_output_trapping(cell, er));      // Property 1
    EXPECT_TRUE(verify_trigger_reachability(cell, er)); // Property 2
  }
  EXPECT_FALSE(regions.to_string(cell).empty());
}

TEST(RegionsTest, QuiescentRegionFollowsExcitation) {
  const StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const SignalId c = *cell.find_signal("c");
  const SignalRegions regions = compute_regions(cell, c);
  for (const ExcitationRegion& er : regions.regions) {
    EXPECT_FALSE(er.quiescent.empty());
    for (const StateId s : er.quiescent) {
      EXPECT_FALSE(cell.excited(s, c));
      EXPECT_EQ(cell.value(s, c), er.rising);  // QR(+c) has c = 1
    }
  }
}

TEST(RegionsTest, SingleTraversalOnStagedCycle) {
  const StateGraph g = bench_suite::build_benchmark("chu172");
  EXPECT_TRUE(is_single_traversal(g));
}

TEST(RegionsTest, ProductWithCyclicPeerIsNotSingleTraversal) {
  // Figure 7(b): a free-running peer inside an excitation region makes the
  // trigger region larger than one state.
  const StateGraph g = bench_suite::build_benchmark("sing2dual-inp");
  EXPECT_FALSE(is_single_traversal(g));
}

TEST(RegionsTest, MultipleExcitationRegionsForReusedSignal) {
  // In the read-write core the output c rises twice per cycle: two up-ERs.
  const StateGraph g = bench_suite::build_read_write_core();
  const SignalId c = *g.find_signal("c");
  const SignalRegions regions = compute_regions(g, c);
  int up = 0, down = 0;
  for (const ExcitationRegion& er : regions.regions) (er.rising ? up : down)++;
  EXPECT_EQ(up, 2);
  EXPECT_EQ(down, 2);
}

/// Properties 1 and 2 hold for every region of every benchmark (bounded
/// size to keep the suite fast).
class RegionPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegionPropertyTest, TrappingAndTriggerReachability) {
  const StateGraph g = bench_suite::build_benchmark(GetParam());
  for (const SignalRegions& regions : compute_all_regions(g)) {
    for (const ExcitationRegion& er : regions.regions) {
      EXPECT_TRUE(verify_output_trapping(g, er));
      EXPECT_TRUE(verify_trigger_reachability(g, er));
      EXPECT_FALSE(er.trigger_regions.empty());
      // Trigger regions are subsets of the ER.
      const std::set<StateId> members(er.states.begin(), er.states.end());
      for (const auto& tr : er.trigger_regions)
        for (const StateId s : tr) EXPECT_TRUE(members.contains(s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, RegionPropertyTest,
                         ::testing::Values("chu133", "chu150", "chu172", "converta", "ebergen",
                                           "full", "hazard", "hybridf", "qr42", "vbe5b",
                                           "sbuf-send-ctl", "pr-rcv-ifc", "read-write", "pmcm1",
                                           "pmcm2", "combuf1", "combuf2", "sing2dual-inp",
                                           "sing2dual-out"));

}  // namespace
}  // namespace nshot::sg
