# Empty dependencies file for dcc_decoder_frontend.
# This may be replaced when dependencies are built.
