// Ablation for the paper's footnote 6: the N-SHOT flow accepts ANY
// conventional two-level minimizer; the heuristic ESPRESSO-style loop is
// the default and ESPRESSO-exact "can still improve results".  This bench
// compares the heuristic and exact minimizers on the benchmark-derived
// set/reset specifications (cube count, literal count, runtime).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "logic/verify.hpp"
#include "nshot/spec_derivation.hpp"

namespace {

using namespace nshot;

void print_comparison() {
  std::printf("Minimizer ablation (footnote 6): heuristic espresso loop vs exact\n\n");
  std::printf("%-15s | %8s %8s %9s | %8s %8s %9s\n", "circuit", "heur.cub", "heur.lit",
              "heur.ms", "exact.cub", "exact.lit", "exact.ms");
  for (const char* name : {"chu133", "chu150", "chu172", "converta", "ebergen", "full",
                           "hazard", "qr42", "vbe5b", "pmcm1", "pmcm2", "combuf2"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const core::DerivedSpec derived = core::derive_spec(g);

    const auto t0 = std::chrono::steady_clock::now();
    const logic::Cover heuristic = logic::espresso(derived.spec);
    const auto t1 = std::chrono::steady_clock::now();
    const logic::Cover exact = logic::exact_minimize(derived.spec);
    const auto t2 = std::chrono::steady_clock::now();

    if (!logic::verify_cover(derived.spec, heuristic).ok ||
        !logic::verify_cover(derived.spec, exact).ok) {
      std::printf("%-15s VERIFICATION FAILED\n", name);
      continue;
    }
    std::printf("%-15s | %8zu %8d %9.2f | %8zu %8d %9.2f\n", name, heuristic.size(),
                heuristic.literal_count(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(), exact.size(),
                exact.literal_count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  std::printf(
      "\nBoth covers satisfy the same (F, D, R) spec — Corollary 1 lets the\n"
      "flow use either.  Exact minimization is per-output (no AND sharing),\n"
      "so the shared heuristic cover can use FEWER gates overall even when\n"
      "exact finds fewer cubes per function.\n");
}

void bm_espresso(benchmark::State& state, const char* name) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::DerivedSpec derived = core::derive_spec(g);
  for (auto _ : state) {
    const logic::Cover cover = logic::espresso(derived.spec);
    benchmark::DoNotOptimize(cover.size());
  }
}

void bm_exact(benchmark::State& state, const char* name) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::DerivedSpec derived = core::derive_spec(g);
  for (auto _ : state) {
    const logic::Cover cover = logic::exact_minimize(derived.spec);
    benchmark::DoNotOptimize(cover.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  for (const char* name : {"chu133", "pmcm1"}) {
    benchmark::RegisterBenchmark(("espresso/" + std::string(name)).c_str(),
                                 [name](benchmark::State& s) { bm_espresso(s, name); });
    benchmark::RegisterBenchmark(("exact/" + std::string(name)).c_str(),
                                 [name](benchmark::State& s) { bm_exact(s, name); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
