file(REMOVE_RECURSE
  "CMakeFiles/nshot_util.dir/error.cpp.o"
  "CMakeFiles/nshot_util.dir/error.cpp.o.d"
  "CMakeFiles/nshot_util.dir/rng.cpp.o"
  "CMakeFiles/nshot_util.dir/rng.cpp.o.d"
  "CMakeFiles/nshot_util.dir/strings.cpp.o"
  "CMakeFiles/nshot_util.dir/strings.cpp.o.d"
  "libnshot_util.a"
  "libnshot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
