// Shared helpers of the baseline synthesizers (internal header).
#pragma once

#include "logic/cover.hpp"
#include "logic/spec.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace nshot::baselines::detail {

/// Next-state specification: output k is the next value of the k-th
/// non-input signal — 1 on ER(+a) u QR(+a), 0 on ER(-a) u QR(-a),
/// don't care on unreachable codes.
logic::TwoLevelSpec next_state_spec(const sg::StateGraph& sg);

/// Create one net per SG signal; input signals become primary inputs.
/// Non-input nets are left undriven (the caller attaches the restoring
/// element or feedback wire).  Returns the net ids in signal order.
std::vector<netlist::NetId> make_signal_rails(const sg::StateGraph& sg, netlist::Netlist& nl);

/// Build the AND gate of `cube` over the single-rail signal nets (negative
/// literals use the inversion bubbles of the basic gates).
netlist::NetId build_cube_gate(netlist::Netlist& nl, const logic::Cube& cube,
                               const std::vector<netlist::NetId>& rails,
                               const std::string& name);

}  // namespace nshot::baselines::detail
