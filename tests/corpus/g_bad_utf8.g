.model badutf8
.inputs a
.outputs Ã(
.graph
a+ c+
.marking { }
.end
