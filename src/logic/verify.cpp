#include "logic/verify.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "exec/thread_pool.hpp"
#include "logic/bitslice.hpp"

namespace nshot::logic {
namespace {

// Bit-sliced check of one output: transpose its on/off minterm lists into
// code planes once, then every cube is one word-parallel literal AND
// instead of a per-minterm probe.  The first violating minterm is the
// lowest set bit of the violation set, which is the first minterm in list
// order — the same one the code-at-a-time reference reports.
VerifyResult verify_output(const TwoLevelSpec& spec, const Cover& cover, int o) {
  const CodeBitPlanes on(spec.on(o), spec.num_inputs());
  const CodeBitPlanes off(spec.off(o), spec.num_inputs());
  std::vector<std::uint64_t> on_covered(on.num_words(), 0);
  std::vector<std::uint64_t> off_covered(off.num_words(), 0);
  std::vector<std::uint64_t> scratch(std::max(on.num_words(), off.num_words()));
  for (const Cube& cube : cover) {
    if (!cube.has_output(o)) continue;
    on.covered_by(cube, scratch.data());
    for (std::size_t w = 0; w < on.num_words(); ++w) on_covered[w] |= scratch[w];
    off.covered_by(cube, scratch.data());
    for (std::size_t w = 0; w < off.num_words(); ++w) off_covered[w] |= scratch[w];
  }
  for (std::size_t w = 0; w < on.num_words(); ++w) {
    const std::uint64_t missing = on.full_word(w) & ~on_covered[w];
    if (missing) {
      const std::size_t i = w * 64 + static_cast<std::size_t>(std::countr_zero(missing));
      return {false, "on-minterm " + std::to_string(on.code(i)) + " of output " +
                         std::to_string(o) + " is not covered"};
    }
  }
  for (std::size_t w = 0; w < off.num_words(); ++w) {
    if (off_covered[w]) {
      const std::size_t i = w * 64 + static_cast<std::size_t>(std::countr_zero(off_covered[w]));
      return {false, "off-minterm " + std::to_string(off.code(i)) + " of output " +
                         std::to_string(o) + " is covered"};
    }
  }
  return {};
}

}  // namespace

VerifyResult verify_cover(const TwoLevelSpec& spec, const Cover& cover, int jobs) {
  const int outputs = spec.num_outputs();
  if (jobs <= 1 || outputs <= 1) {
    for (int o = 0; o < outputs; ++o) {
      VerifyResult result = verify_output(spec, cover, o);
      if (!result.ok) return result;
    }
    return {};
  }
  // Outputs are independent; merging by index and returning the first
  // failure in output order reproduces the serial early-exit exactly.
  std::vector<VerifyResult> results = exec::parallel_map<VerifyResult>(
      outputs, [&](int o) { return verify_output(spec, cover, o); }, jobs);
  for (VerifyResult& result : results)
    if (!result.ok) return std::move(result);
  return {};
}

VerifyResult verify_cover_reference(const TwoLevelSpec& spec, const Cover& cover) {
  for (int o = 0; o < spec.num_outputs(); ++o) {
    for (const std::uint64_t code : spec.on(o)) {
      if (!cover.covers(code, o))
        return {false, "on-minterm " + std::to_string(code) + " of output " + std::to_string(o) +
                           " is not covered"};
    }
    for (const std::uint64_t code : spec.off(o)) {
      if (cover.covers(code, o))
        return {false, "off-minterm " + std::to_string(code) + " of output " + std::to_string(o) +
                           " is covered"};
    }
  }
  return {};
}

VerifyResult verify_irredundant(const TwoLevelSpec& spec, const Cover& cover) {
  for (std::size_t i = 0; i < cover.size(); ++i) {
    bool needed = false;
    for (int o = 0; o < spec.num_outputs() && !needed; ++o) {
      if (!cover[i].has_output(o)) continue;
      for (const std::uint64_t code : spec.on(o)) {
        if (!cover[i].covers_minterm(code)) continue;
        bool elsewhere = false;
        for (std::size_t j = 0; j < cover.size() && !elsewhere; ++j)
          elsewhere = j != i && cover[j].has_output(o) && cover[j].covers_minterm(code);
        if (!elsewhere) {
          needed = true;
          break;
        }
      }
    }
    if (!needed)
      return {false, "cube " + std::to_string(i) + " (" + cover[i].to_string() + ") is redundant"};
  }
  return {};
}

}  // namespace nshot::logic
