#!/usr/bin/env python3
"""Validate a JSON document against one of the checked-in schemas.

Dependency-free on purpose: CI images carry a bare python3, so this
implements the small JSON-Schema subset the schemas under schemas/
actually use (type, properties, required, additionalProperties, items,
enum, minimum, anyOf) instead of importing jsonschema.

Usage: validate_schema.py SCHEMA.json DOCUMENT.json
Exits 0 when the document conforms, 1 with one line per violation.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        # JSON has one number type; accept 3.0 but not 3.5 and never bool.
        return not isinstance(value, bool) and (
            isinstance(value, int) or (isinstance(value, float) and value.is_integer())
        )
    if name == "number":
        return not isinstance(value, bool) and isinstance(value, (int, float))
    return isinstance(value, TYPES[name])


def validate(value, schema, path, errors):
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not one of {schema['enum']}")
            return

    if "anyOf" in schema:
        branches = []
        for option in schema["anyOf"]:
            attempt = []
            validate(value, option, path, attempt)
            if not attempt:
                return
            branches.append(attempt)
        # All branches failed; report the closest one (fewest violations).
        errors.extend(min(branches, key=len))
        return

    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
        return

    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                validate(item, properties[key], f"{path}.{key}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                validate(item, additional, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    with open(argv[2]) as f:
        document = json.load(f)
    errors = []
    validate(document, schema, "$", errors)
    for error in errors:
        print(f"{argv[2]}: {error}", file=sys.stderr)
    if not errors:
        print(f"{argv[2]}: conforms to {schema.get('title', argv[1])}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
