file(REMOVE_RECURSE
  "CMakeFiles/espresso_steps_test.dir/espresso_steps_test.cpp.o"
  "CMakeFiles/espresso_steps_test.dir/espresso_steps_test.cpp.o.d"
  "espresso_steps_test"
  "espresso_steps_test.pdb"
  "espresso_steps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
