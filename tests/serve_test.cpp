// serve::Server end to end: fair-share admission (flood vs trickle),
// deadline-aware and backlog rejection, graceful drain (no internal
// errors, journal-resume parity with BatchRunner), the file-queue
// transport, and the NDJSON protocol codecs.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nshot/batch.hpp"
#include "nshot/journal.hpp"
#include "serve/file_queue.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/json_value.hpp"

namespace nshot::serve {
namespace {

namespace fs = std::filesystem;

/// Base server options for the tests: synthesis-only (fast), quiet.
ServeOptions quiet_serve() {
  ServeOptions options;
  options.pipeline.collect_observability = false;
  options.pipeline.verify_conformance = false;
  options.pipeline.stress_test = false;
  return options;
}

WireRequest gen_request(const std::string& client, const std::string& id, int seed) {
  WireRequest wire;
  wire.client = client;
  wire.request.id = id;
  wire.request.kind = "synthesis";
  wire.request.spec = "gen:" + std::to_string(seed);
  return wire;
}

/// Scratch directory unique to the test, wiped on construction.
fs::path test_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("nshot_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RoundTripsARequestLine) {
  WireRequest wire;
  wire.client = "ci";
  wire.request.id = "r1";
  wire.request.kind = "conformance";
  wire.request.spec = "bench:chu133";
  wire.request.overrides["seed"] = "7";
  wire.request.overrides["deadline_ms"] = "2000";

  const WireRequest parsed = parse_request(request_json(wire));
  EXPECT_EQ(parsed.client, "ci");
  EXPECT_EQ(parsed.request.id, "r1");
  EXPECT_EQ(parsed.request.kind, "conformance");
  EXPECT_EQ(parsed.request.spec, "bench:chu133");
  EXPECT_EQ(parsed.request.overrides, wire.request.overrides);
}

TEST(ProtocolTest, CanonicalizesJsonOverrideValues) {
  const WireRequest wire = parse_request(
      R"({"id":"r","client":"c","spec":"bench:chu133",)"
      R"("overrides":{"seed":7,"verify_kernels":true,"deadline_ms":"1500"}})");
  EXPECT_EQ(wire.request.overrides.at("seed"), "7");
  EXPECT_EQ(wire.request.overrides.at("verify_kernels"), "1");
  EXPECT_EQ(wire.request.overrides.at("deadline_ms"), "1500");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), Error);
  EXPECT_THROW(parse_request(R"({"client":"c"})"), Error);  // no spec
  EXPECT_THROW(parse_request(R"({"client":"c","spec":"a","g_text":"b"})"), Error);
  EXPECT_THROW(parse_request(R"({"client":"c","spec":"a","bogus":1})"), Error);
  EXPECT_THROW(parse_request(R"({"client":"c","spec":"a","overrides":{"nope":1}})"), Error);
}

// ---------------------------------------------------------------------------
// Server core
// ---------------------------------------------------------------------------

TEST(ServerTest, ExecutesRequestsAndJournalsThem) {
  const fs::path dir = test_dir("journal");
  ServeOptions options = quiet_serve();
  options.journal_path = (dir / "journal.jsonl").string();
  {
    Server server(options);
    const Response ok = server.enqueue(gen_request("a", "good", 7)).get();
    EXPECT_TRUE(ok.outcome.ok());
    WireRequest bad;
    bad.client = "a";
    bad.request.id = "bad";
    bad.request.spec = "bench:no-such-benchmark";
    const Response failed = server.enqueue(bad).get();
    EXPECT_FALSE(failed.outcome.ok());
    EXPECT_EQ(failed.outcome.stage, "load");
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.completed, 2);
    EXPECT_EQ(stats.failed, 1);
  }
  // A second incarnation sees both terminal lines.
  Server reborn(options);
  EXPECT_NE(reborn.journaled("good"), "");
  EXPECT_NE(reborn.journaled("bad"), "");
  EXPECT_EQ(reborn.journaled("never-ran"), "");
}

TEST(ServerTest, RejectsWhenTheBacklogIsFull) {
  ServeOptions options = quiet_serve();
  options.admission.max_inflight = 1;
  options.admission.max_queue = 2;
  Server server(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.enqueue(gen_request("a", "q" + std::to_string(i), 7)));
  int rejected = 0;
  for (auto& future : futures) {
    const Response response = future.get();
    if (response.outcome.code == ErrorCode::kResourceExhausted) {
      EXPECT_EQ(response.outcome.stage, "admission");
      EXPECT_EQ(response.attempts, 0);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(server.stats().rejected, rejected);
}

// Deadline-aware rejection, at the queue level where it is deterministic:
// with a known backlog and service estimate, a deadline below the
// projected queue wait is turned away with resource_exhausted while a
// generous one is admitted.
TEST(AdmissionTest, RejectsHopelessDeadlinesUpFront) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.initial_service_ms = 1000.0;
  FairShareQueue queue(options);
  std::string reason;
  for (int i = 0; i < 4; ++i) {
    Ticket filler;
    filler.seq = static_cast<std::uint64_t>(i + 1);
    filler.id = "fill" + std::to_string(i);
    filler.client = "a";
    filler.klass = "batch";
    ASSERT_TRUE(queue.offer(filler, &reason)) << reason;
  }
  Ticket doomed;
  doomed.seq = 99;
  doomed.id = "doomed";
  doomed.client = "a";
  doomed.klass = "batch";
  doomed.deadline_ms = 1.0;  // projected wait: 4 queued x 1000 ms each
  EXPECT_FALSE(queue.offer(doomed, &reason));
  EXPECT_NE(reason.find("deadline"), std::string::npos) << reason;
  doomed.deadline_ms = 1e8;
  EXPECT_TRUE(queue.offer(doomed, &reason)) << reason;
}

// The fairness contract: a flood client saturating its share must not
// starve a trickle client.  With one worker slot the dispatch order is
// deterministic round-robin, so the trickle requests overtake the
// flood's backlog.  A plug request blocking on a FIFO holds the slot
// until every request is queued (the round-robin starts from a fully
// populated backlog), and completion order is read from the journal —
// written in dispatch-completion order under the server lock, so it is
// immune to completion-callback thread scheduling.
TEST(ServerTest, FairShareKeepsTheTrickleClientResponsive) {
  const fs::path dir = test_dir("fairshare");
  const fs::path fifo = dir / "plug.fifo";
  ASSERT_EQ(mkfifo(fifo.c_str(), 0600), 0);

  ServeOptions options = quiet_serve();
  options.admission.max_inflight = 1;
  options.journal_path = (dir / "journal.jsonl").string();
  Server server(options);

  WireRequest plug;
  plug.client = "flood";
  plug.request.id = "plug";
  plug.request.spec = "file:" + fifo.string();  // open blocks until we write
  server.enqueue(plug, [](const Response&) {});

  std::vector<std::promise<void>> done(14);
  int slot = 0;
  auto track = [&](int slot_index) {
    return [&done, slot_index](const Response&) { done[slot_index].set_value(); };
  };
  for (int i = 0; i < 12; ++i)
    server.enqueue(gen_request("flood", "flood" + std::to_string(i), 7), track(slot++));
  for (int i = 0; i < 2; ++i)
    server.enqueue(gen_request("trickle", "trickle" + std::to_string(i), 7), track(slot++));
  {
    std::ofstream unblock(fifo);  // releases the plug; backlog is complete
    unblock << "not a valid .g file\n";
  }
  for (auto& promise : done) promise.get_future().wait();
  server.drain();

  // Completion ranks (journal order, plug excluded).
  std::vector<std::string> order;
  std::ifstream journal(options.journal_path);
  std::string line;
  while (std::getline(journal, line)) {
    const std::string id = journal_field(line, "id");
    if (id != "plug") order.push_back(id);
  }
  ASSERT_EQ(order.size(), 14u);
  int max_trickle = -1, max_flood = -1;
  for (int rank = 0; rank < 14; ++rank) {
    if (order[rank].rfind("trickle", 0) == 0) max_trickle = rank;
    else max_flood = rank;
  }
  // Round-robin interleaves the trickle requests with the flood instead
  // of appending them behind its 12-deep backlog: both trickle requests
  // finish in the first half, and the trickle client's worst completion
  // rank (its p99 — it only has two samples) beats the flood's.
  std::string joined;
  for (const std::string& id : order) joined += id + " ";
  EXPECT_LT(max_trickle, 7) << "trickle starved behind the flood backlog: " << joined;
  EXPECT_LT(max_trickle, max_flood) << joined;
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

// Mid-flight drain: whatever already started finishes and is journaled,
// everything still queued is evicted as resource_exhausted/"draining"
// (never internal), and a serial BatchRunner pointed at the same journal
// resumes exactly the completed prefix.
TEST(DrainTest, EvictsQueuedWorkAndKeepsJournalParityWithBatchRunner) {
  const fs::path dir = test_dir("drain");
  ServeOptions options = quiet_serve();
  options.admission.max_inflight = 1;
  options.journal_path = (dir / "journal.jsonl").string();
  Server server(options);

  // Seeds whose generated STGs all synthesize cleanly, so resume parity
  // is over an all-green batch.
  const int seeds[] = {100, 101, 102, 103, 104, 106, 107, 108};
  std::string manifest;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "run" + std::to_string(i);
    manifest += id + " gen:" + std::to_string(seeds[i]) + "\n";
    futures.push_back(server.enqueue(gen_request("ci", id, seeds[i])));
  }
  futures.front().wait();  // at least one request is mid/post-flight
  server.drain();

  int completed = 0, evicted = 0;
  for (auto& future : futures) {
    const Response response = future.get();
    if (response.outcome.ok()) {
      ++completed;
    } else {
      EXPECT_NE(response.outcome.code, ErrorCode::kInternal) << response.outcome.message;
      ASSERT_EQ(response.outcome.code, ErrorCode::kResourceExhausted);
      EXPECT_EQ(response.outcome.stage, "admission");
      EXPECT_EQ(response.outcome.message.rfind("draining", 0), 0u) << response.outcome.message;
      ++evicted;
    }
  }
  EXPECT_GE(completed, 1);
  EXPECT_EQ(completed + evicted, 8);
  // Post-drain submissions are turned away, not executed.
  const Response late = server.enqueue(gen_request("ci", "late", 999)).get();
  EXPECT_EQ(late.outcome.code, ErrorCode::kResourceExhausted);

  // BatchRunner resumes the server's journal: it skips exactly the
  // completed runs and finishes the evicted ones.
  BatchOptions bopt;
  bopt.pipeline = quiet_serve().pipeline;
  bopt.pipeline.verify_conformance = false;
  bopt.journal_path = options.journal_path;
  BatchRunner runner(bopt);
  const BatchSummary summary = runner.run(BatchRunner::parse_manifest(manifest));
  EXPECT_EQ(summary.total, 8);
  EXPECT_EQ(summary.resumed, completed);
  EXPECT_EQ(summary.executed, evicted);
  EXPECT_EQ(summary.succeeded, 8);
}

TEST(DrainTest, DrainIsIdempotentAndCountsRejections) {
  Server server(quiet_serve());
  server.drain();
  server.drain();
  EXPECT_TRUE(server.draining());
  const Response response = server.enqueue(gen_request("a", "r", 7)).get();
  EXPECT_EQ(response.outcome.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(server.stats().rejected, 1);
}

// ---------------------------------------------------------------------------
// File-queue transport
// ---------------------------------------------------------------------------

TEST(FileQueueTest, AnswersRequestsResumesAndRestoresDrainEvictions) {
  const fs::path dir = test_dir("filequeue");
  const fs::path queue = dir / "q";
  fs::create_directories(queue);
  ServeOptions options = quiet_serve();
  options.journal_path = (dir / "journal.jsonl").string();

  auto drop = [&](const std::string& name, const std::string& line) {
    std::ofstream out(queue / (name + ".req.json"));
    out << line << "\n";
  };
  drop("a", R"({"id":"a","client":"ci","kind":"synthesis","spec":"gen:7"})");
  drop("b", R"({"id":"b","client":"ci","spec":"bench:no-such"})");
  drop("c", R"(this is not json)");

  {
    Server server(options);
    FileQueueOptions fq;
    fq.dir = queue.string();
    FileQueueWorker worker(fq, server);
    EXPECT_EQ(worker.scan_once(), 3);
    server.drain();  // waits for in-flight completions
  }
  auto read_response = [&](const std::string& name) {
    std::ifstream in(queue / (name + ".resp.json"));
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parse_json(buffer.str(), name);
  };
  EXPECT_TRUE(read_response("a").bool_or("ok", false));
  EXPECT_FALSE(read_response("b").bool_or("ok", true));
  const JsonValue malformed = read_response("c");
  EXPECT_FALSE(malformed.bool_or("ok", true));
  EXPECT_EQ(malformed.at("error").string_or("code", ""), "input_invalid");

  // Re-drop "a": the journal answers it without executing.
  fs::remove(queue / "a.resp.json");
  drop("a", R"({"id":"a","client":"ci","kind":"synthesis","spec":"gen:7"})");
  {
    Server server(options);
    FileQueueOptions fq;
    fq.dir = queue.string();
    FileQueueWorker worker(fq, server);
    EXPECT_EQ(worker.scan_once(), 1);
    EXPECT_EQ(server.stats().resumed, 1);
    EXPECT_EQ(server.stats().accepted, 0);
  }
  EXPECT_TRUE(read_response("a").bool_or("resumed", false));

  // A drain eviction restores the .req.json for the next incarnation.
  drop("d", R"({"id":"d","client":"ci","kind":"synthesis","spec":"gen:11"})");
  {
    Server server(options);
    server.drain();  // draining before the scan -> everything is evicted
    FileQueueOptions fq;
    fq.dir = queue.string();
    FileQueueWorker worker(fq, server);
    worker.scan_once();
  }
  EXPECT_TRUE(fs::exists(queue / "d.req.json"));
  EXPECT_FALSE(fs::exists(queue / "d.resp.json"));
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

TEST(SocketTest, ServesConcurrentClientsOverTheSocket) {
  const fs::path dir = test_dir("socket");
  const std::string path = (dir / "serve.sock").string();
  Server server(quiet_serve());
  SocketListener listener(path, server);

  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      SocketClient client(path);
      for (int i = 0; i < 3; ++i) {
        const std::string id = "c" + std::to_string(c) + "-" + std::to_string(i);
        const std::string line = client.roundtrip(gen_request("client" + std::to_string(c), id, 7));
        const JsonValue doc = parse_json(line, "response");
        if (doc.bool_or("ok", false) && doc.string_or("id", "") == id) ++ok_count;
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  listener.stop();
  server.drain();
  EXPECT_EQ(ok_count.load(), 12);
  EXPECT_EQ(server.stats().completed, 12);
  EXPECT_EQ(server.stats().failed, 0);
}

}  // namespace
}  // namespace nshot::serve
