#include "sg/properties.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sg/bitset.hpp"
#include "util/error.hpp"

namespace nshot::sg {

std::string PropertyReport::summary() const {
  if (violations.empty()) return "ok";
  std::string text = std::to_string(violations.size()) + " violation(s):";
  for (const std::string& v : violations) {
    text += "\n  - ";
    text += v;
  }
  return text;
}

PropertyReport check_consistency(const StateGraph& sg) {
  PropertyReport report;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    for (const Edge& e : sg.out_edges(s)) {
      const std::uint64_t bit = 1ULL << e.label.signal;
      const std::uint64_t expected =
          e.label.rising ? (sg.code(s) | bit) : (sg.code(s) & ~bit);
      const bool pre_ok = sg.value(s, e.label.signal) != e.label.rising;
      if (!pre_ok)
        report.violations.push_back("transition " + sg.label_name(e.label) + " from " +
                                    sg.state_name(s) + " does not change the signal value");
      else if (sg.code(e.target) != expected)
        report.violations.push_back("arc " + sg.state_name(s) + " --" + sg.label_name(e.label) +
                                    "--> " + sg.state_name(e.target) +
                                    " has an inconsistent target code");
    }
  }
  return report;
}

PropertyReport check_reachability(const StateGraph& sg) {
  PropertyReport report;
  if (sg.initial() < 0) {
    report.violations.push_back("no initial state set");
    return report;
  }
  std::vector<bool> seen(static_cast<std::size_t>(sg.num_states()), false);
  std::vector<StateId> stack{sg.initial()};
  seen[static_cast<std::size_t>(sg.initial())] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Edge& e : sg.out_edges(s)) {
      if (!seen[static_cast<std::size_t>(e.target)]) {
        seen[static_cast<std::size_t>(e.target)] = true;
        stack.push_back(e.target);
      }
    }
  }
  for (StateId s = 0; s < sg.num_states(); ++s)
    if (!seen[static_cast<std::size_t>(s)])
      report.violations.push_back("state " + sg.state_name(s) + " is unreachable");
  return report;
}

PropertyReport check_semi_modular(const StateGraph& sg) {
  PropertyReport report;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    const auto labels = sg.enabled_labels(s);
    for (const TransitionLabel& t1 : labels) {
      if (sg.is_input(t1.signal)) continue;  // only non-input transitions are protected
      for (const TransitionLabel& t2 : labels) {
        if (t1 == t2) continue;
        const auto s_via_t1 = sg.successor(s, t1);
        const auto s_via_t2 = sg.successor(s, t2);
        NSHOT_ASSERT(s_via_t1 && s_via_t2, "enabled label without successor");
        const auto s12 = sg.successor(*s_via_t1, t2);
        const auto s21 = sg.successor(*s_via_t2, t1);
        if (!s21)
          report.violations.push_back("non-input transition " + sg.label_name(t1) +
                                      " is disabled by " + sg.label_name(t2) + " in " +
                                      sg.state_name(s));
        else if (!s12 || *s12 != *s21)
          report.violations.push_back("diamond of " + sg.label_name(t1) + " and " +
                                      sg.label_name(t2) + " from " + sg.state_name(s) +
                                      " does not commute");
      }
    }
  }
  return report;
}

namespace {

/// Bit mask of non-input signals excited in s.
std::uint64_t excited_noninput_mask(const StateGraph& sg, StateId s) {
  std::uint64_t mask = 0;
  for (const Edge& e : sg.out_edges(s))
    if (!sg.is_input(e.label.signal)) mask |= (1ULL << e.label.signal);
  return mask;
}

}  // namespace

namespace {

/// The sorted (code, state) table the coding checkers group over.  The
/// fill is chunked over state ranges when jobs > 1 (each index is written
/// exactly once, so any chunking is byte-identical); the sort stays
/// serial.
std::vector<std::pair<std::uint64_t, StateId>> sorted_code_state_pairs(const StateGraph& sg,
                                                                       int jobs) {
  std::vector<std::pair<std::uint64_t, StateId>> by_code(
      static_cast<std::size_t>(sg.num_states()));
  auto fill = [&](int begin, int end) {
    for (StateId s = begin; s < end; ++s)
      by_code[static_cast<std::size_t>(s)] = {sg.code(s), s};
  };
  if (jobs <= 1)
    fill(0, sg.num_states());
  else
    exec::parallel_for_chunks(sg.num_states(), /*grain=*/0, fill, jobs);
  std::sort(by_code.begin(), by_code.end());
  return by_code;
}

/// Visit CSC conflict pairs (first occurrence, conflicting state) in the
/// order check_csc reports them: groups in ascending code order, states
/// ascending within a group.  Shared by the string-building checker and
/// the count-only path the CSC solver hammers, so both stay identical.
/// The excited-mask probes of duplicate-code groups are the per-state
/// edge scans, so they are the part worth spreading across workers; the
/// masks are merged by group position, which keeps the visit order.
template <typename Visitor>
void for_each_csc_conflict(const StateGraph& sg, int jobs, Visitor&& visit) {
  const std::vector<std::pair<std::uint64_t, StateId>> by_code =
      sorted_code_state_pairs(sg, jobs);
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // [begin, end) with >= 2 states
  std::vector<StateId> members;                             // group members, in visit order
  for (std::size_t begin = 0; begin < by_code.size();) {
    std::size_t end = begin;
    while (end < by_code.size() && by_code[end].first == by_code[begin].first) ++end;
    if (end - begin >= 2) {
      groups.emplace_back(begin, end);
      for (std::size_t i = begin; i < end; ++i) members.push_back(by_code[i].second);
    }
    begin = end;
  }
  const std::vector<std::uint64_t> masks = exec::parallel_map<std::uint64_t>(
      static_cast<int>(members.size()),
      [&](int i) {
        return excited_noninput_mask(sg, members[static_cast<std::size_t>(i)]);
      },
      jobs, /*grain=*/0);
  std::size_t offset = 0;
  for (const auto& [begin, end] : groups) {
    const std::uint64_t reference = masks[offset];
    for (std::size_t i = 1; i < end - begin; ++i)
      if (masks[offset + i] != reference) visit(by_code[begin].second, by_code[begin + i].second);
    offset += end - begin;
  }
}

}  // namespace

PropertyReport check_csc(const StateGraph& sg, int jobs) {
  PropertyReport report;
  for_each_csc_conflict(sg, jobs, [&](StateId first, StateId other) {
    report.violations.push_back("CSC conflict between " + sg.state_name(first) + " and " +
                                sg.state_name(other) +
                                " (equal codes, different excited non-input signals)");
  });
  return report;
}

PropertyReport check_usc(const StateGraph& sg, int jobs) {
  PropertyReport report;
  // Sorted-group formulation of the first-occurrence hash scan: within a
  // group (states ascending) every state after the first collides with the
  // group's first state, and sorting the (colliding state, first state)
  // pairs by colliding state reproduces the hash scan's report order —
  // one violation per non-first state, emitted in ascending state order.
  const std::vector<std::pair<std::uint64_t, StateId>> by_code =
      sorted_code_state_pairs(sg, jobs);
  std::vector<std::pair<StateId, StateId>> collisions;  // (colliding state, first state)
  for (std::size_t begin = 0; begin < by_code.size();) {
    std::size_t end = begin;
    while (end < by_code.size() && by_code[end].first == by_code[begin].first) ++end;
    for (std::size_t i = begin + 1; i < end; ++i)
      collisions.emplace_back(by_code[i].second, by_code[begin].second);
    begin = end;
  }
  std::sort(collisions.begin(), collisions.end());
  for (const auto& [other, first] : collisions)
    report.violations.push_back("states " + sg.state_name(first) + " and " +
                                sg.state_name(other) + " share one binary code");
  return report;
}

std::size_t count_csc_conflicts(const StateGraph& sg, int jobs) {
  std::size_t count = 0;
  for_each_csc_conflict(sg, jobs, [&count](StateId, StateId) { ++count; });
  return count;
}

namespace {

/// The Definition-3 scan against a prebuilt excitation plane of `a` —
/// shared by the per-signal entry point (which builds one plane) and the
/// batched all-signal one (which builds every plane in a single sweep).
std::vector<StateId> detonant_scan(const StateGraph& sg, const StateSet& excited, int jobs) {
  auto scan = [&](StateId begin, StateId end) {
    std::vector<StateId> found;
    std::vector<StateId> exciting_successors;
    for (StateId w = begin; w < end; ++w) {
      if (excited.contains(w)) continue;  // a must be stable in w
      exciting_successors.clear();
      for (const Edge& e : sg.out_edges(w))
        if (excited.contains(e.target)) exciting_successors.push_back(e.target);
      std::sort(exciting_successors.begin(), exciting_successors.end());
      exciting_successors.erase(
          std::unique(exciting_successors.begin(), exciting_successors.end()),
          exciting_successors.end());
      if (exciting_successors.size() >= 2) found.push_back(w);
    }
    return found;
  };
  if (jobs <= 1) return scan(0, sg.num_states());
  // Per-range verdicts concatenated in range order == the ascending-state
  // order the serial scan produces, for any range split.
  const int n = sg.num_states();
  const int chunks = std::min(exec::resolve_jobs(jobs) * 4, std::max(n, 1));
  const std::vector<std::vector<StateId>> parts = exec::parallel_map<std::vector<StateId>>(
      chunks,
      [&](int c) {
        const StateId begin = static_cast<StateId>(static_cast<std::int64_t>(n) * c / chunks);
        const StateId end = static_cast<StateId>(static_cast<std::int64_t>(n) * (c + 1) / chunks);
        return scan(begin, end);
      },
      jobs);
  std::vector<StateId> result;
  for (const std::vector<StateId>& part : parts)
    result.insert(result.end(), part.begin(), part.end());
  return result;
}

}  // namespace

std::vector<StateId> detonant_states(const StateGraph& sg, SignalId a, int jobs) {
  NSHOT_REQUIRE(!sg.is_input(a), "detonant states are defined for non-input signals");
  // One excitation plane of a replaces the per-state / per-successor
  // out-edge scans: stability and successor excitation become bit probes.
  return detonant_scan(sg, excited_set(sg, a, jobs), jobs);
}

std::vector<std::vector<StateId>> all_detonant_states(const StateGraph& sg, int jobs) {
  // One shared sweep builds every signal's excitation plane; calling
  // detonant_states per signal would repeat that whole-graph edge pass
  // once per non-input signal for identical plane content.
  const std::vector<StateSet> excited = all_excited_sets(sg, jobs);
  const std::vector<SignalId> signals = sg.noninput_signals();
  std::vector<std::vector<StateId>> result;
  result.reserve(signals.size());
  for (const SignalId a : signals)
    result.push_back(detonant_scan(sg, excited[static_cast<std::size_t>(a)], jobs));
  return result;
}

PropertyReport check_csc_reference(const StateGraph& sg) {
  PropertyReport report;
  std::map<std::uint64_t, std::vector<StateId>> by_code;
  for (StateId s = 0; s < sg.num_states(); ++s) by_code[sg.code(s)].push_back(s);
  for (const auto& [code, states] : by_code) {
    if (states.size() < 2) continue;
    const std::uint64_t reference = excited_noninput_mask(sg, states[0]);
    for (std::size_t i = 1; i < states.size(); ++i)
      if (excited_noninput_mask(sg, states[i]) != reference)
        report.violations.push_back("CSC conflict between " + sg.state_name(states[0]) + " and " +
                                    sg.state_name(states[i]) +
                                    " (equal codes, different excited non-input signals)");
  }
  return report;
}

PropertyReport check_usc_reference(const StateGraph& sg) {
  PropertyReport report;
  std::map<std::uint64_t, StateId> seen;
  for (StateId s = 0; s < sg.num_states(); ++s) {
    const auto [it, inserted] = seen.emplace(sg.code(s), s);
    if (!inserted)
      report.violations.push_back("states " + sg.state_name(it->second) + " and " +
                                  sg.state_name(s) + " share one binary code");
  }
  return report;
}

std::size_t count_csc_conflicts_reference(const StateGraph& sg) {
  return check_csc_reference(sg).violations.size();
}

std::vector<StateId> detonant_states_reference(const StateGraph& sg, SignalId a) {
  NSHOT_REQUIRE(!sg.is_input(a), "detonant states are defined for non-input signals");
  std::vector<StateId> result;
  for (StateId w = 0; w < sg.num_states(); ++w) {
    if (sg.excited(w, a)) continue;
    std::set<StateId> exciting;
    for (const Edge& e : sg.out_edges(w))
      if (sg.excited(e.target, a)) exciting.insert(e.target);
    if (exciting.size() >= 2) result.push_back(w);
  }
  return result;
}

bool is_distributive(const StateGraph& sg, SignalId a) { return detonant_states(sg, a).empty(); }

bool is_distributive(const StateGraph& sg) {
  // The batched scan shares one plane sweep across signals; early-exit on
  // the first detonant signal matches the per-signal loop's verdict (a
  // bool, so the extra signals a serial loop would skip are unobservable).
  for (const std::vector<StateId>& detonant : all_detonant_states(sg))
    if (!detonant.empty()) return false;
  return true;
}

PropertyReport check_implementability(const StateGraph& sg) {
  const obs::Span span("implementability");
  PropertyReport report;
  const auto csc = [](const StateGraph& g) { return check_csc(g); };
  using Checker = PropertyReport (*)(const StateGraph&);
  for (const Checker check : {Checker{&check_consistency}, Checker{&check_reachability},
                              Checker{&check_semi_modular}, Checker{csc}}) {
    PropertyReport partial = check(sg);
    report.violations.insert(report.violations.end(), partial.violations.begin(),
                             partial.violations.end());
  }
  return report;
}

}  // namespace nshot::sg
